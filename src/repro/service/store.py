"""Content-addressed result store: a segmented JSON-lines log.

One cache directory holds a **segmented log**: zero or more sealed
segments (``segment-NNNNNN.jsonl``, replayed in numeric order) followed
by the active segment (``results.jsonl``, the only file ever appended
to).  Every line is a self-contained record::

    {"format": 1, "key": "<sha256>", "kind": "<record kind>",
     "payload": {...}}

``key`` is the request's content hash (:mod:`repro.service.keys`), so
the store never needs to interpret the request — identical requests
address identical lines.  Data records are append-only: a re-``put``
of a known key is a no-op (content-addressed records cannot change
meaning), and loading replays the segments in order with
last-key-wins, so an interrupted writer at worst loses its final
line.  A truncated trailing line (killed process) is skipped with a
warning — and *counted*, so ``repro cache verify`` and the ``stats``
RPC surface corruption instead of dropping it invisibly.

Five **control kinds** interleave with data records and drive the
cache lifecycle (:meth:`ResultStore.put` rejects them):

``touch``
    Marks *key* as recently used.  Written on cache hits only when an
    eviction limit is configured, so unbounded stores (the default)
    never write during warm runs.  Replay order doubles as the
    persisted LRU order.
``tombstone``
    Logical delete: *key* stops being visible; its bytes are
    reclaimed at the next compaction.  Written by eviction/GC.
``compaction``
    First line of a segment produced by :meth:`ResultStore.compact`.
    Replay resets the view built so far: the compacted segment is a
    complete snapshot, so any older segment that survived a crash
    mid-cleanup is superseded instead of resurrecting dead keys.
``claim``
    A leased in-flight marker: *key* is being evaluated by the writer
    identified in the payload (claim id, pid, server id, lease
    deadline).  Claims are what make N ``repro serve`` processes over
    one directory evaluate each unique cell exactly once fleet-wide:
    before evaluating, a writer appends a claim via
    :meth:`ResultStore.try_claim`; a sibling that sees a live claim
    waits for the result instead of duplicating the work.  Replay is
    **first-wins**: a claim for a key that already carries an active
    claim is ignored, so two racers appending concurrently agree on
    the winner by file order alone.  A claim written *after* the
    incumbent's lease deadline supersedes it (crash -> lease expiry ->
    takeover), and the eventual data record for the key retires the
    claim implicitly.
``release``
    Explicitly retires a claim (matched by claim id) before its lease
    expires: written when an evaluation fails (so siblings retry
    immediately instead of waiting out the TTL) and when a claim whose
    recorded pid is dead is reclaimed by a sibling on the same host.

**Eviction** (``max_bytes`` / ``max_records``) bounds the *live* index
— least-recently-used keys are tombstoned until the store fits.
**Compaction** (:meth:`ResultStore.compact`) bounds the *files*: live
records are rewritten (in LRU order, oldest first) into one fresh
sealed segment via temp-file + ``fsync`` + atomic rename, then the
superseded segments are deleted.  A crash at any point (fault-injected
in ``tests/service/test_lifecycle_crash.py``) reopens to the exact
pre-compaction view.  The active segment is sealed automatically once
it outgrows ``segment_max_bytes``.

**Multiple writers** may share one cache directory (several CLI runs,
several ``repro serve`` processes).  Appends are safe by construction
(single ``O_APPEND`` writes), and the store keeps its in-memory view
current by *syncing* against the directory: every file keeps a replay
progress offset, and a cheap directory-mtime / active-size signature
check detects sibling activity.  New records appended by siblings are
tail-replayed in file order; a sealed-segment set that changed
underneath (a sibling sealed or compacted) triggers a full reload, so
:meth:`ResultStore.get` never serves from an index a compaction made
stale.  Eviction bounds are enforced *cross-process*: before selecting
victims the store acquires ``evict.lock`` (same pid-stamped,
stale-reclaimed protocol as ``compact.lock``) and re-syncs, so N
writers against one ``max_bytes`` directory converge within the bound
instead of each enforcing it against a private view.  Pins remain
per-process: a sibling may evict a key another process pinned, which
costs a re-evaluation, never a wrong result.

``path=None`` gives a purely in-memory store with the same interface —
the service uses it to deduplicate within one process when no cache
directory is configured.

Exploration results go through the lossless state round-trip of
:mod:`repro.analysis.export` (``result_to_state``/``result_from_state``),
so a rebuilt :class:`~repro.core.mhla.MhlaResult` renders byte-identical
report tables to the one that was stored — before *and* after any
number of evictions and compactions.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import socket
import sys
import threading
import time
from collections import OrderedDict
from typing import Callable

from repro.analysis.export import result_from_state, result_to_state
from repro.core.mhla import MhlaResult
from repro.errors import ReproError, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.service.keys import is_content_key

STORE_FORMAT_VERSION = 1
"""Bumped when the record layout changes incompatibly."""

RESULTS_FILENAME = "results.jsonl"
"""The active segment of a cache directory (the only appended file)."""

SEGMENT_PATTERN = re.compile(r"^segment-(\d{6,})\.jsonl$")
"""Sealed segments; the number gives the replay order."""

COMPACT_TMP_FILENAME = "compact.tmp"
"""Scratch file of an in-progress compaction (ignored by replay)."""

EVICT_LOCK_FILENAME = "evict.lock"
"""Exclusive-create lock held while eviction bounds are enforced.

Bound enforcement against a shared directory is read-modify-write:
sync the view, select LRU victims, append their tombstones.  Two
writers doing that concurrently against private views is exactly the
per-process eviction hole — each sees only its own records and the
union blows past the bound.  The lock serialises the decision; the
sync *inside* the lock folds every sibling's records into the view the
victims are selected from.  The protocol is the same pid-stamped,
stale-reclaimed one as ``compact.lock``.  Acquisition is bounded
(:data:`EVICT_LOCK_TIMEOUT_S`): a timeout degrades to unlocked
enforcement against the synced view, which can at worst over-evict —
never exceed the bound.
"""

EVICT_LOCK_TIMEOUT_S = 10.0
"""Longest a writer waits for ``evict.lock`` before enforcing unlocked."""

COMPACT_LOCK_FILENAME = "compact.lock"
"""Exclusive-create lock held while a compaction rewrites the directory.

Compaction is an offline, single-writer pass; the lock makes that
assumption *enforced* instead of documented: a second compactor, or
any process trying to append (``put``/eviction/touch) while another
process's compaction is mid-rewrite, gets a clean :class:`StoreError`
instead of racing the segment deletions.  The file holds the owning
pid; a lock whose pid is no longer alive (a genuinely crashed
compactor) is reclaimed when the directory is next opened.
"""

KIND_RESULT = "mhla_result"
KIND_FUZZ_VERDICT = "fuzz_verdict"

KIND_TOUCH = "touch"
KIND_TOMBSTONE = "tombstone"
KIND_COMPACTION = "compaction"
KIND_CLAIM = "claim"
KIND_RELEASE = "release"

CONTROL_KINDS = frozenset(
    (KIND_TOUCH, KIND_TOMBSTONE, KIND_COMPACTION, KIND_CLAIM, KIND_RELEASE)
)
"""Lifecycle records; not data — :meth:`ResultStore.put` rejects them."""

DEFAULT_CLAIM_TTL_S = 60.0
"""Default lease duration of an in-flight claim.

Long enough that no single cell evaluation outlives its lease on a
loaded machine (a expired lease means a sibling may duplicate the
work — never a wrong result, results are content-addressed), short
enough that a crashed server's claims are taken over promptly.  Tune
per deployment with ``--claim-ttl``.
"""

CLAIM_DONE = "done"
"""The key's result is already in the store; nothing to evaluate."""
CLAIM_WON = "won"
"""This store holds the claim; the caller must evaluate (and put)."""
CLAIM_YIELDED = "yielded"
"""A live sibling holds the claim; wait for its result instead."""

DEFAULT_SEGMENT_MAX_BYTES = 16 * 1024 * 1024
"""Active-segment size that triggers sealing (16 MiB)."""

_CORRUPT_DETAIL_CAP = 50
"""Most corrupt-line locations kept for reporting (counts are exact)."""


def _encode(record: dict) -> bytes:
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


class ResultStore:
    """Memoized request results, keyed by content hash.

    Parameters
    ----------
    path:
        Cache *directory* (created on first write).  ``None`` keeps the
        store purely in memory.
    max_bytes:
        Evict least-recently-used records once the live records exceed
        this many encoded bytes (``None`` = unbounded).
    max_records:
        Evict least-recently-used records once more than this many keys
        are live (``None`` = unbounded).
    segment_max_bytes:
        Seal the active segment once it grows past this size.
    claim_ttl_s:
        Lease duration of in-flight claims taken by :meth:`try_claim`
        when the caller does not pass an explicit TTL.
    server_id:
        Human-readable owner label stamped into claim records (for
        ``repro cache verify`` and debugging).  Defaults to
        ``<hostname>:<pid>``.
    auto_compact_ratio:
        When set, compact automatically after sealing a segment once
        the files exceed this multiple of the live bytes (and at least
        one ``segment_max_bytes``).  Only safe when this process is the
        directory's **single writer** — ``repro serve`` enables it;
        offline CLI runs that may share a directory do not.
    """

    def __init__(
        self,
        path: str | pathlib.Path | None = None,
        max_bytes: int | None = None,
        max_records: int | None = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        claim_ttl_s: float = DEFAULT_CLAIM_TTL_S,
        server_id: str | None = None,
        auto_compact_ratio: float | None = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError("max_bytes must be positive (or None)")
        if max_records is not None and max_records <= 0:
            raise StoreError("max_records must be positive (or None)")
        if segment_max_bytes <= 0:
            raise StoreError("segment_max_bytes must be positive")
        if claim_ttl_s <= 0:
            raise StoreError("claim_ttl_s must be positive")
        if auto_compact_ratio is not None and auto_compact_ratio <= 0:
            raise StoreError("auto_compact_ratio must be positive (or None)")
        self._lock = threading.RLock()
        self._index: dict[str, dict] = {}
        self._line_bytes: dict[str, int] = {}
        # oldest-first LRU order; its keys always equal _index's keys
        self._lru_order: OrderedDict[str, None] = OrderedDict()
        self._live_bytes = 0
        self._active_bytes = 0
        self.max_bytes = max_bytes
        self.max_records = max_records
        self.segment_max_bytes = segment_max_bytes
        self.claim_ttl_s = claim_ttl_s
        self.server_id = (
            server_id
            if server_id is not None
            else f"{socket.gethostname()}:{os.getpid()}"
        )
        self.auto_compact_ratio = auto_compact_ratio
        # in-flight claims by key (latest winning claim payload); keys
        # never overlap _index — a data record retires its claim
        self._claims: dict[str, dict] = {}
        self._claim_counter = 0
        self._sealed_since_check = False
        self._pins: dict[str, int] = {}
        #: Test hook: called with a fault-point name at every crash-safe
        #: step of :meth:`compact`; raising simulates a crash there.
        self.crash_hook: Callable[[str], None] | None = None
        # lifetime counters (see stats()), as typed instruments in this
        # store's registry (merged into `repro call metrics`)
        self.metrics = MetricsRegistry()
        _counter = self.metrics.counter
        self._claims_written = _counter(
            "repro_store_claims_written_total", "Claim records appended.")
        self._releases_written = _counter(
            "repro_store_releases_written_total", "Release records appended.")
        self._claims_reclaimed = _counter(
            "repro_store_claims_reclaimed_total",
            "Stale (expired or dead-pid) leases taken over.")
        self._hits = _counter("repro_store_hits_total", "Key lookups served.")
        self._misses = _counter(
            "repro_store_misses_total", "Key lookups that found nothing.")
        self._evictions = _counter(
            "repro_store_evictions_total", "Records tombstoned by bounds/GC.")
        self._touches_written = _counter(
            "repro_store_touches_written_total",
            "Persisted LRU refreshes (bounded disk stores only).")
        self._syncs = _counter(
            "repro_store_syncs_total",
            "Directory syncs that scanned for sibling activity.")
        self._reloads = _counter(
            "repro_store_reloads_total",
            "Full view rebuilds forced by seals/compactions underneath.")
        self._load_races = _counter(
            "repro_store_load_races_total",
            "Files that vanished mid-load (concurrent seal/compact).")
        self._evict_lock_timeouts = _counter(
            "repro_store_evict_lock_timeouts_total",
            "Evictions that ran unlocked after waiting out evict.lock.")
        # resettable damage tallies: compaction drops damaged lines
        # with their segments, so these are gauges, not counters
        self._corrupt_count = self.metrics.gauge(
            "repro_store_corrupt_lines", "Damaged lines in current files.")
        self._unrecognised_count = self.metrics.gauge(
            "repro_store_unrecognised_lines",
            "Unrecognised records in current files.")
        self.metrics.gauge(
            "repro_store_live_records", "Keys currently visible."
        ).set_fn(lambda: len(self._index))
        self.metrics.gauge(
            "repro_store_live_bytes", "Encoded bytes of the live records."
        ).set_fn(lambda: self._live_bytes)
        self.metrics.gauge(
            "repro_store_live_claims", "Keys under an in-flight claim."
        ).set_fn(lambda: len(self._claims))
        self._corrupt_detail: list[dict] = []
        self._holding_compact_lock = False
        # cross-process sync state: how far each file has been replayed
        # plus the last directory-mtime signature we synced against
        self._seg_progress: dict[str, int] = {}
        self._dir_mtime: int | None = None
        self._dir = pathlib.Path(path) if path is not None else None
        self._file = self._dir / RESULTS_FILENAME if self._dir else None
        if self._dir is not None:
            self._open_time_lock_reclaim()
            self._load_directory()
            # An existing log may exceed freshly configured bounds; a
            # pure-hit workload would otherwise never trigger eviction.
            self._enforce_limits()

    def _reset_view(self) -> None:
        self._index.clear()
        self._line_bytes.clear()
        self._lru_order.clear()
        self._claims.clear()
        self._live_bytes = 0
        self._active_bytes = 0
        self._seg_progress = {}

    def _load_directory(self) -> None:
        """Replay every segment, retrying if a concurrent writer seals
        or compacts the directory between listing and reading.

        The final attempt tolerates files vanishing mid-scan (counted
        in ``load_races``) instead of raising: a read-only open — e.g.
        ``repro cache stats``/``verify`` — on a directory another
        process is actively sealing or compacting must still succeed;
        the next :meth:`_sync` picks up whatever settled.
        """
        for attempt in range(5):
            tolerant = attempt == 4
            self._reset_view()
            self._corrupt_count.set(0)
            self._unrecognised_count.set(0)
            self._corrupt_detail = []
            # read before scanning: if the directory changes while we
            # load, the stale signature forces the next sync to look
            mtime = self._dir_mtime_now()
            try:
                for file in self._segment_files():
                    try:
                        self._seg_progress[file.name] = self._replay_file(file)
                    except FileNotFoundError:
                        if not tolerant:
                            raise
                        self._load_races.inc()
            except FileNotFoundError:
                self._load_races.inc()
                continue
            self._active_bytes = self._seg_progress.get(RESULTS_FILENAME, 0)
            # a tolerant pass may have skipped files: a None signature
            # forces the next operation to sync against the directory
            self._dir_mtime = None if tolerant else mtime
            return

    # ------------------------------------------------------------------
    # segment discovery + replay
    # ------------------------------------------------------------------

    def _sealed_files(self) -> list[pathlib.Path]:
        if self._dir is None or not self._dir.is_dir():
            return []
        sealed = []
        for entry in self._dir.iterdir():
            match = SEGMENT_PATTERN.match(entry.name)
            if match:
                sealed.append((int(match.group(1)), entry))
        return [entry for _number, entry in sorted(sealed)]

    def _segment_files(self) -> list[pathlib.Path]:
        """Every replayable file, in replay order (sealed asc + active)."""
        files = self._sealed_files()
        if self._file is not None and self._file.exists():
            files.append(self._file)
        return files

    def _next_segment_number(self) -> int:
        numbers = [
            int(SEGMENT_PATTERN.match(entry.name).group(1))
            for entry in self._sealed_files()
        ]
        return max(numbers, default=0) + 1

    @staticmethod
    def _parse_line(line: str) -> tuple[dict | None, str | None]:
        """One raw line -> (record, None) or (None, rejection reason)."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None, "corrupt"
        if (
            not isinstance(record, dict)
            or record.get("format") != STORE_FORMAT_VERSION
            or not isinstance(record.get("key"), str)
            or not isinstance(record.get("kind"), str)
            or not isinstance(record.get("payload"), dict)
        ):
            return None, "unrecognised"
        return record, None

    def _note_damage(self, file: pathlib.Path, lineno: int, reason: str) -> None:
        if reason == "corrupt":
            self._corrupt_count.inc()
            label = "skipping corrupt cache line"
        else:
            self._unrecognised_count.inc()
            label = "skipping unrecognised record"
        if len(self._corrupt_detail) < _CORRUPT_DETAIL_CAP:
            self._corrupt_detail.append(
                {"file": file.name, "line": lineno, "reason": reason}
            )
        print(f"warning: {file}:{lineno}: {label}", file=sys.stderr)

    def _replay(self, record: dict, nbytes: int) -> None:
        """Apply one parsed record to the in-memory view."""
        key = record["key"]
        kind = record["kind"]
        if kind == KIND_COMPACTION:
            # Snapshot boundary: everything replayed so far came from
            # segments this one supersedes (crash mid-cleanup).
            self._index.clear()
            self._line_bytes.clear()
            self._lru_order.clear()
            self._claims.clear()
            self._live_bytes = 0
            return
        if kind == KIND_TOMBSTONE:
            if key in self._index:
                del self._index[key]
                self._live_bytes -= self._line_bytes.pop(key)
                self._lru_order.pop(key, None)
            return
        if kind == KIND_TOUCH:
            if key in self._index:
                self._lru_order.move_to_end(key)
            return
        if kind == KIND_CLAIM:
            self._replay_claim(key, record.get("payload", {}))
            return
        if kind == KIND_RELEASE:
            current = self._claims.get(key)
            claim_id = record.get("payload", {}).get("claim_id")
            if current is not None and current.get("claim_id") == claim_id:
                del self._claims[key]
            return
        if key in self._index:
            self._live_bytes -= self._line_bytes[key]
        self._index[key] = record
        self._line_bytes[key] = nbytes
        self._live_bytes += nbytes
        self._lru_order[key] = None
        self._lru_order.move_to_end(key)
        # the data record IS the claim's result: the lease is retired
        self._claims.pop(key, None)

    def _replay_claim(self, key: str, payload: dict) -> None:
        """First-wins claim resolution, deterministic by file order.

        Every process replays the same total append order (single
        ``O_APPEND`` writes), so "the first claim whose lease had not
        expired when the next one was written" names one winner for
        every reader, however late it replays.  Wall-clock *replay*
        time deliberately plays no part — only record contents do.
        """
        if key in self._index:
            return  # result already landed; the claim is stale noise
        if not isinstance(payload.get("claim_id"), str):
            return  # malformed claim: never let it block the key
        current = self._claims.get(key)
        if current is None or self._claim_expired_by(
            current, payload.get("claimed_at", 0.0)
        ):
            self._claims[key] = payload

    @staticmethod
    def _claim_expired_by(claim: dict, timestamp) -> bool:
        """True when *claim*'s lease had expired at *timestamp*."""
        try:
            return float(claim.get("expires_at", 0.0)) <= float(timestamp)
        except (TypeError, ValueError):
            return True

    def _replay_file(
        self, file: pathlib.Path, start: int = 0, at_open: bool = True
    ) -> int:
        """Replay records of *file* from byte offset *start*; returns
        the offset consumed (the file's replay progress).

        A trailing line without a newline is a torn write: at open time
        (*at_open*) the writer is assumed dead and the fragment is
        consumed like any other line (parseable -> replayed, otherwise
        counted corrupt); during an incremental sync it is assumed to
        be a *live* sibling mid-append and left unconsumed, so the
        completed record replays on a later sync.
        """
        with file.open("rb") as handle:
            if start:
                handle.seek(start)
            data = handle.read()
        end = len(data)
        if end <= 0:
            return start
        # line numbers (damage reports only) are relative to the whole
        # file; the prefix line count is computed lazily because the
        # hot path — tail-syncing a clean file — must not re-read it
        prefix_lines: int | None = 0 if start == 0 else None
        tail_lines = 0
        offset = 0
        while offset < end:
            newline = data.find(b"\n", offset)
            if newline == -1:
                if not at_open:
                    break
                raw, next_offset = data[offset:end], end
            else:
                raw, next_offset = data[offset:newline], newline + 1
            tail_lines += 1
            line = raw.decode("utf-8", errors="replace")
            if line.strip():
                record, reason = self._parse_line(line)
                if record is None:
                    if prefix_lines is None:
                        prefix_lines = self._count_lines_before(file, start)
                    self._note_damage(file, prefix_lines + tail_lines, reason)
                else:
                    self._replay(record, len(raw) + 1)
            offset = next_offset
        return start + offset

    @staticmethod
    def _count_lines_before(file: pathlib.Path, start: int) -> int:
        try:
            return file.read_bytes()[:start].count(b"\n")
        except OSError:  # pragma: no cover - concurrent removal
            return 0

    # ------------------------------------------------------------------
    # cross-process synchronisation
    # ------------------------------------------------------------------

    def _dir_mtime_now(self) -> int | None:
        if self._dir is None:
            return None
        try:
            return self._dir.stat().st_mtime_ns
        except OSError:
            return None

    def _full_reload(self) -> None:
        """Discard and rebuild the in-memory view from the directory."""
        self._reloads.inc()
        self._load_directory()

    def _sync(self, check_active: bool = True) -> bool:
        """Fold records other processes wrote into the in-memory view.

        Caller holds ``self._lock``.  Cheap when nothing happened: the
        directory mtime (touched by create/seal/compact events, not by
        appends) short-circuits, and *check_active* adds one stat of
        the active segment to also catch sibling appends.  When the
        sealed-segment set changed underneath us — a sibling sealed the
        active file or compacted the directory — the whole view is
        reloaded (tail offsets are meaningless across a rewrite);
        otherwise only the appended tails are replayed, in file order,
        which is exactly the order a fresh loader would see.

        Returns True when the view changed.
        """
        if self._dir is None:
            return False
        mtime = self._dir_mtime_now()
        if mtime is not None and mtime == self._dir_mtime:
            if not check_active:
                return False
            # _active_bytes = replay progress + our own (already
            # indexed) appends: a file exactly that size holds no
            # sibling bytes, so progress can jump over our own tail
            # without re-reading it
            if self._file_size(self._file) == self._active_bytes:
                self._seg_progress[RESULTS_FILENAME] = self._active_bytes
                return False
        self._syncs.inc()
        sealed = self._sealed_files()
        if {file.name for file in sealed} != (
            set(self._seg_progress) - {RESULTS_FILENAME}
        ):
            self._full_reload()
            return True
        changed = False
        files = list(sealed)
        if self._file is not None:
            files.append(self._file)
        for file in files:
            progress = self._seg_progress.get(file.name, 0)
            size = self._file_size(file)
            if size < progress:
                # truncated or replaced underneath us
                self._full_reload()
                return True
            if size > progress:
                try:
                    consumed = self._replay_file(
                        file, start=progress, at_open=False
                    )
                except FileNotFoundError:
                    self._full_reload()
                    return True
                if consumed != progress:
                    self._seg_progress[file.name] = consumed
                    changed = True
        self._active_bytes = self._seg_progress.get(RESULTS_FILENAME, 0)
        self._dir_mtime = mtime
        return changed

    # ------------------------------------------------------------------
    # appending + rolling
    # ------------------------------------------------------------------

    def _append(self, record: dict) -> int:
        """Append one record to the active segment; returns its size."""
        data = _encode(record)
        self._append_data(data)
        return len(data)

    def _append_data(self, data: bytes) -> None:
        if self._file is None:
            return
        self._check_compact_lock()
        self._file.parent.mkdir(parents=True, exist_ok=True)
        # One os-level append of the complete payload: O_APPEND plus a
        # single unbuffered write keeps records from interleaving even
        # when several processes share the cache directory.
        with self._file.open("ab", buffering=0) as handle:
            handle.write(data)
        self._active_bytes += len(data)
        if self._active_bytes > self.segment_max_bytes:
            self._seal_active()
            self._sealed_since_check = True

    def _seal_active(self) -> None:
        """Rotate the active segment into a sealed one.

        The segment number is *claimed* with an exclusive create before
        the rename: two processes sealing the same directory can race
        on :meth:`_next_segment_number`, and an ``os.replace`` straight
        onto the computed name would silently overwrite the winner's
        sealed records.  Losing the claim just moves to the next
        number; losing the active file entirely means the other
        process sealed it first, which is equally fine.
        """
        if self._file is None or not self._file.exists():
            return
        number = self._next_segment_number()
        while True:
            target = self._dir / f"segment-{number:06d}.jsonl"
            try:
                os.close(
                    os.open(target, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                )
            except FileExistsError:
                number += 1
                continue
            self._crash_point("seal:claimed")
            try:
                os.replace(self._file, target)
            except FileNotFoundError:  # pragma: no cover - cross-process race
                target.unlink(missing_ok=True)
            else:
                # the active file's replay progress carries over to its
                # sealed name, so our own seal does not force a reload
                self._seg_progress[target.name] = self._seg_progress.pop(
                    RESULTS_FILENAME, 0
                )
            self._crash_point("seal:renamed")
            break
        self._active_bytes = 0
        # _dir_mtime is deliberately left stale: the next sync re-scans
        # the directory, catching anything a sibling did concurrently

    # ------------------------------------------------------------------
    # generic records
    # ------------------------------------------------------------------

    def get(self, key: str, kind: str) -> dict | None:
        """Payload stored under *key*, or None (kind mismatch = miss).

        Hits refresh the key's LRU position; when an eviction limit is
        configured on a disk store, the refresh is persisted as a
        ``touch`` record (coalesced: re-touching the most recently used
        key writes nothing).

        Disk stores first check the directory for sibling activity: a
        compaction or seal underneath reloads the view instead of
        serving from a stale index, and a miss retries after folding in
        sibling appends (a record another process just wrote is a hit,
        not a redundant re-evaluation).
        """
        with self._lock:
            if self._dir is not None:
                self._sync(check_active=False)
            record = self._index.get(key)
            if record is None and self._dir is not None and self._sync():
                record = self._index.get(key)
            if record is None or record.get("kind") != kind:
                self._misses.inc()
                return None
            self._hits.inc()
            self._touch(key)
            self._maybe_auto_compact()
            return record["payload"]

    def _touch(self, key: str) -> None:
        if next(reversed(self._lru_order), None) == key:
            return
        self._lru_order.move_to_end(key)
        if self._bounded and self._file is not None:
            self._append(
                {
                    "format": STORE_FORMAT_VERSION,
                    "key": key,
                    "kind": KIND_TOUCH,
                    "payload": {},
                }
            )
            self._touches_written.inc()

    def put(self, key: str, kind: str, payload: dict) -> bool:
        """Store *payload* under *key*; False if the key already exists.

        Existing keys are left untouched: records are content-addressed,
        so a second writer by definition holds the same content.  If the
        new record pushes the store past a configured eviction limit,
        least-recently-used keys are tombstoned until it fits again
        (never the key just written).
        """
        if not isinstance(key, str) or not key:
            raise StoreError(f"record key must be a non-empty string, got {key!r}")
        if kind in CONTROL_KINDS:
            raise StoreError(
                f"record kind {kind!r} is reserved for the store lifecycle"
            )
        record = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        with self._lock:
            if key in self._index:
                return False
            nbytes = self._append(record)
            self._index[key] = record
            self._line_bytes[key] = nbytes
            self._live_bytes += nbytes
            self._lru_order[key] = None
            self._claims.pop(key, None)
            self._enforce_limits(protect=key)
            self._maybe_auto_compact()
        return True

    # ------------------------------------------------------------------
    # in-flight claims
    # ------------------------------------------------------------------

    def _claim_payload(
        self, ttl_s: float, now: float, trace_id: str | None = None
    ) -> dict:
        self._claim_counter += 1
        payload = {
            "claim_id": f"{self.server_id}:{self._claim_counter}",
            "pid": os.getpid(),
            "server": self.server_id,
            "claimed_at": now,
            "expires_at": now + ttl_s,
        }
        if trace_id is not None:
            # correlation only: replay reads claim_id/claimed_at/
            # expires_at/pid/server and ignores this field, so traced
            # and untraced fleets behave identically
            payload["trace_id"] = trace_id
        return payload

    def _write_claim(self, key: str, payload: dict) -> None:
        self._append(
            {
                "format": STORE_FORMAT_VERSION,
                "key": key,
                "kind": KIND_CLAIM,
                "payload": payload,
            }
        )
        self._claims_written.inc()

    def _write_release(
        self, key: str, claim_id: str, reclaimed: bool = False
    ) -> None:
        self._append(
            {
                "format": STORE_FORMAT_VERSION,
                "key": key,
                "kind": KIND_RELEASE,
                "payload": {"claim_id": claim_id, "reclaimed": reclaimed},
            }
        )
        self._releases_written.inc()

    def _claim_usurpable(self, claim: dict, now: float) -> bool:
        """True when *claim* may be taken over right *now*.

        Two independent paths: the lease ran out (crashed-then-silent
        holder), or the holder is a same-host process that is
        verifiably dead (fast path — no need to wait out the TTL).
        """
        if self._claim_expired_by(claim, now):
            return True
        pid = claim.get("pid")
        server = claim.get("server", "")
        local = isinstance(server, str) and server.startswith(
            f"{socket.gethostname()}:"
        )
        return (
            local
            and isinstance(pid, int)
            and pid != os.getpid()
            and not self._pid_alive(pid)
        )

    def try_claim(
        self,
        key: str,
        ttl_s: float | None = None,
        trace_id: str | None = None,
    ) -> tuple[str, str | None]:
        """Try to lease *key* for evaluation; returns ``(status, claim_id)``.

        *trace_id* (optional) is stamped into the claim payload for
        fleet-wide correlation — a sibling that yields to this claim
        can name the trace that owns it.  It plays no part in claim
        resolution.

        Statuses:

        - :data:`CLAIM_DONE` — a result for *key* is already stored;
          ``claim_id`` is None and nothing needs evaluating.
        - :data:`CLAIM_WON` — this store now holds the lease;
          ``claim_id`` names it and the caller must evaluate the key
          (the ``put`` of the result retires the lease) or
          :meth:`release_claim` it on failure.
        - :data:`CLAIM_YIELDED` — a live sibling holds an unexpired
          lease; ``claim_id`` is the *sibling's*, and the caller should
          poll :meth:`get` / :meth:`claim_info` instead of evaluating.

        The race between two writers claiming simultaneously is settled
        by file order: both append, both re-sync, and both replay the
        same total order — exactly one sees its own ``claim_id`` win.
        Dead-pid and TTL-expired incumbents are usurped by appending a
        ``release`` for the stale lease before our own claim, keeping
        replay deterministic for every reader.
        """
        if ttl_s is None:
            ttl_s = self.claim_ttl_s
        if ttl_s <= 0:
            raise StoreError("claim ttl must be positive")
        with self._lock:
            if self._dir is not None:
                self._sync()
            if key in self._index:
                return CLAIM_DONE, None
            now = time.time()
            current = self._claims.get(key)
            if current is not None:
                if not self._claim_usurpable(current, now):
                    return CLAIM_YIELDED, current.get("claim_id")
                if not self._claim_expired_by(current, now):
                    # dead-pid fast path: retire the corpse's lease in
                    # the log so every replayer agrees it is gone
                    self._write_release(
                        key, current.get("claim_id", ""), reclaimed=True
                    )
                    self._claims.pop(key, None)
                self._claims_reclaimed.inc()
            payload = self._claim_payload(ttl_s, now, trace_id=trace_id)
            if self._file is None:
                # memory-only store: single process, we trivially win
                self._claims[key] = payload
                self._claims_written.inc()
                return CLAIM_WON, payload["claim_id"]
            self._write_claim(key, payload)
            # fold in everything appended since our last replay point —
            # our own record included — and let first-wins ordering
            # name the winner.  The _sync fast path deliberately skips
            # our own tail, so the active tail is replayed explicitly.
            self._sync(check_active=False)
            self._replay_active_tail()
            if key in self._index:
                return CLAIM_DONE, None
            winner = self._claims.get(key)
            if winner is not None and winner.get("claim_id") == payload["claim_id"]:
                return CLAIM_WON, payload["claim_id"]
            if winner is None:
                # our claim was superseded and then retired before we
                # looked — treat as yielded; the result will land soon
                return CLAIM_YIELDED, None
            return CLAIM_YIELDED, winner.get("claim_id")

    def release_claim(self, key: str, claim_id: str) -> bool:
        """Retire a lease we hold without storing a result.

        Used when evaluation fails or is abandoned, so siblings can
        re-claim the key immediately instead of waiting out the TTL.
        Returns False when the lease is no longer ours (already retired
        by a result, superseded after expiry, or never won).
        """
        with self._lock:
            current = self._claims.get(key)
            if current is None or current.get("claim_id") != claim_id:
                return False
            del self._claims[key]
            if self._file is not None:
                self._write_release(key, claim_id)
            return True

    def _replay_active_tail(self) -> None:
        """Replay unconsumed bytes of the active segment, own appends
        included (which the :meth:`_sync` fast path skips over).

        Re-replaying our own records is idempotent; what matters is
        that sibling records interleaved with ours are applied in true
        file order, which is the order every other process sees too.
        """
        if self._file is None:
            return
        progress = self._seg_progress.get(RESULTS_FILENAME, 0)
        try:
            consumed = self._replay_file(
                self._file, start=progress, at_open=False
            )
        except FileNotFoundError:  # pragma: no cover - sealed underneath us
            return
        self._seg_progress[RESULTS_FILENAME] = consumed
        self._active_bytes = max(self._active_bytes, consumed)

    def claim_info(self, key: str) -> dict | None:
        """The live claim payload for *key*, or None; syncs first."""
        with self._lock:
            if self._dir is not None:
                self._sync()
            claim = self._claims.get(key)
            return dict(claim) if claim is not None else None

    def live_claims(self) -> int:
        """Number of keys currently under an in-flight claim."""
        with self._lock:
            return len(self._claims)

    # ------------------------------------------------------------------
    # eviction + GC
    # ------------------------------------------------------------------

    @property
    def _bounded(self) -> bool:
        return self.max_bytes is not None or self.max_records is not None

    def _over_limit(
        self, max_bytes: int | None, max_records: int | None
    ) -> bool:
        if max_records is not None and len(self._index) > max_records:
            return True
        if max_bytes is not None and self._live_bytes > max_bytes:
            return True
        return False

    def pin(self, key: str) -> None:
        """Shield *key* from eviction until :meth:`unpin` (refcounted).

        The service pins every key of an in-flight batch: a batch that
        needs N results simultaneously cannot be served under a bound
        of fewer than N live records, so the bound goes soft for the
        batch's duration and is re-tightened by :meth:`gc` afterwards.
        """
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Release one :meth:`pin` of *key*."""
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count <= 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count

    def _select_victims(
        self,
        max_bytes: int | None,
        max_records: int | None,
        protect: str | None,
    ) -> list[str]:
        """LRU-ordered keys whose eviction brings the store in bounds.

        Walks the LRU order from the cold end, so a steady-state put
        at capacity pays O(1), and a deep GC pays O(evicted), never a
        sort of the whole live set.
        """
        if not self._over_limit(max_bytes, max_records):
            return []
        victims = []
        records = len(self._index)
        nbytes = self._live_bytes
        for key in self._lru_order:
            over = (
                max_records is not None and records > max_records
            ) or (max_bytes is not None and nbytes > max_bytes)
            if not over:
                break
            if key == protect or key in self._pins:
                continue
            victims.append(key)
            records -= 1
            nbytes -= self._line_bytes[key]
        return victims

    def _evict_keys(self, victims: list[str]) -> None:
        if not victims:
            return
        if self._file is not None:
            # one write for the whole tombstone batch, not one file
            # open per victim
            self._append_data(
                b"".join(
                    _encode(
                        {
                            "format": STORE_FORMAT_VERSION,
                            "key": victim,
                            "kind": KIND_TOMBSTONE,
                            "payload": {},
                        }
                    )
                    for victim in victims
                )
            )
        for victim in victims:
            del self._index[victim]
            self._live_bytes -= self._line_bytes.pop(victim)
            del self._lru_order[victim]
        self._evictions.inc(len(victims))

    def _evict_to(
        self,
        max_bytes: int | None,
        max_records: int | None,
        protect: str | None,
    ) -> int:
        """Evict down to the given bounds, coordinating across processes.

        For disk stores the victim selection runs under ``evict.lock``
        against a freshly synced view: every sibling's records are in
        the view the bound is checked against, and no sibling selects
        victims concurrently.  A lock timeout (live sibling holding it
        unusually long) degrades to unlocked enforcement — still
        against the synced view, so the bound holds; at worst two
        writers tombstone the same victims.
        """
        if max_bytes is None and max_records is None:
            return 0
        if self._dir is None:
            victims = self._select_victims(max_bytes, max_records, protect)
            self._evict_keys(victims)
            return len(victims)
        # cheap when nothing happened; folds sibling appends into the
        # view the bound is checked against
        self._sync()
        if not self._over_limit(max_bytes, max_records):
            return 0
        locked = self._acquire_evict_lock()
        try:
            self._sync()
            victims = self._select_victims(max_bytes, max_records, protect)
            self._evict_keys(victims)
            return len(victims)
        finally:
            if locked:
                self._release_evict_lock()

    def _enforce_limits(self, protect: str | None = None) -> int:
        return self._evict_to(self.max_bytes, self.max_records, protect)

    def gc(
        self,
        max_bytes: int | None = None,
        max_records: int | None = None,
    ) -> dict:
        """Evict least-recently-used records down to the given bounds.

        Bounds default to the store's configured limits; explicit
        arguments override them for this pass only (the ``repro cache
        gc`` entry point).  Eviction is logical — tombstones are
        appended and the index shrinks; run :meth:`compact` to reclaim
        the bytes on disk.
        """
        with self._lock:
            bytes_bound = max_bytes if max_bytes is not None else self.max_bytes
            records_bound = (
                max_records if max_records is not None else self.max_records
            )
            evicted = self._evict_to(bytes_bound, records_bound, None)
            # expired leases are dead weight in the view: prune them
            # here (the log keeps the records; replay-time supersede
            # handles them for every other reader)
            now = time.time()
            expired = [
                key
                for key, claim in self._claims.items()
                if self._claim_expired_by(claim, now)
            ]
            for key in expired:
                del self._claims[key]
            self._maybe_auto_compact()
            return {
                "evicted": evicted,
                "claims_pruned": len(expired),
                "live_records": len(self._index),
                "live_bytes": self._live_bytes,
            }

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    @staticmethod
    def _file_size(path: pathlib.Path) -> int:
        """Size of *path*, 0 if a concurrent seal/compact removed it."""
        try:
            return path.stat().st_size
        except FileNotFoundError:  # pragma: no cover - process race
            return 0

    def _maybe_auto_compact(self) -> None:
        """Compact in place once dead bytes dominate (single-writer).

        Checked only after a seal (the natural growth boundary), so
        steady-state traffic pays nothing.  Keeps a bounded long-lived
        service's *directory* bounded too: tombstones and touches from
        eviction-heavy or hit-heavy workloads would otherwise pile up
        in sealed segments until an operator intervened.
        """
        if (
            self.auto_compact_ratio is None
            or self._dir is None
            or not self._sealed_since_check
        ):
            return
        self._sealed_since_check = False
        file_bytes = sum(
            self._file_size(file) for file in self._segment_files()
        )
        if file_bytes <= self.segment_max_bytes:
            return
        if file_bytes > self.auto_compact_ratio * max(self._live_bytes, 1):
            try:
                self.compact()
            except StoreError:
                # a sibling holds compact.lock; it is compacting for us
                pass

    def _crash_point(self, name: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(name)

    # -- compaction lock ------------------------------------------------

    def _compact_lock_path(self) -> pathlib.Path:
        return self._dir / COMPACT_LOCK_FILENAME

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OSError):  # pragma: no cover - priv pid
            return True
        return True

    @staticmethod
    def _read_lock_owner(path: pathlib.Path) -> int | None:
        """Pid recorded in a lock file, None when unreadable.

        Raises :class:`FileNotFoundError` when the lock is absent, so
        callers can distinguish "free" from "held by unknown pid".
        """
        try:
            return int(path.read_text().strip())
        except FileNotFoundError:
            raise
        except (OSError, ValueError):
            return None

    def _lock_owner(self) -> int | None:
        """Pid recorded in the compact lock, None when absent/unreadable."""
        return self._read_lock_owner(self._compact_lock_path())

    def _check_compact_lock(self) -> None:
        """Refuse to write while another process's compaction runs.

        A lock whose recorded pid is dead is a leftover of a crashed
        compactor: it does not block writers (and is *not* deleted
        here — only the atomic rename-takeover in
        :meth:`_reclaim_stale_compact_lock` ever removes a lock, so a
        live compactor's fresh lock can never be unlinked by a racer
        that read the file moments earlier).
        """
        if self._dir is None or self._holding_compact_lock:
            return
        try:
            owner = self._lock_owner()
        except FileNotFoundError:
            return
        if owner is not None and not self._pid_alive(owner):
            return  # stale leftover; acquire-path takeover will clear it
        raise StoreError(
            f"cache directory {self._dir} is locked by an in-progress "
            f"compaction (pid {owner}); retry once it finishes, or delete "
            f"{COMPACT_LOCK_FILENAME} if that process is gone"
        )

    def _acquire_compact_lock(self) -> None:
        path = self._compact_lock_path()
        self._dir.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = None
                try:
                    owner = self._lock_owner()
                except FileNotFoundError:  # lock freed between open and read
                    continue
                if (
                    attempt == 0
                    and owner is not None
                    and not self._pid_alive(owner)
                    and self._reclaim_stale_compact_lock()
                ):
                    continue  # stale lock taken over; retry the create
                raise StoreError(
                    f"another compaction already holds {path} (pid {owner}); "
                    "offline compaction is single-writer"
                ) from None
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            self._holding_compact_lock = True
            return
        raise StoreError(  # pragma: no cover - persistent create race
            f"could not acquire {path}; another compactor keeps claiming it"
        )

    def _release_compact_lock(self) -> None:
        self._holding_compact_lock = False
        self._compact_lock_path().unlink(missing_ok=True)

    def _reclaim_stale_compact_lock(self) -> bool:
        """Atomically take over a dead compactor's lock; True on success."""
        return self._reclaim_stale_lock(self._compact_lock_path())

    def _reclaim_stale_lock(self, path: pathlib.Path) -> bool:
        """Atomically take over a dead owner's lock file; True on success.

        Unlinking the lock by name would race a concurrent reclaimer:
        between *reading* the dead pid and *unlinking*, another process
        may have reclaimed the stale file and created its own live
        lock, which a plain unlink would then silently destroy.
        Instead the suspect file is **renamed** to a name unique to
        this process — rename is atomic, so exactly one reclaimer wins
        and the loser's rename raises — and only the renamed file
        (which nothing else references) is inspected and deleted.  If
        the renamed file unexpectedly names a live pid, it is restored.
        """
        if self._dir is None:
            return False
        claim = self._dir / f"{path.name}.reclaim-{os.getpid()}"
        try:
            os.rename(path, claim)
        except OSError:
            return False  # someone else reclaimed (or released) first
        try:
            owner = int(claim.read_text().strip())
        except (OSError, ValueError):
            owner = None
        if owner is not None and self._pid_alive(owner):
            # The file we grabbed belongs to a live compactor after
            # all (we lost a read/decide race): put it back.
            try:  # pragma: no cover - narrow double-race window
                os.rename(claim, path)
            except OSError:
                claim.unlink(missing_ok=True)
            return False
        claim.unlink(missing_ok=True)
        return True

    def _open_time_lock_reclaim(self) -> None:
        """Clear a crashed compactor's lock when (re)opening a directory.

        A lock whose recorded pid is still alive is left alone — its
        compaction may genuinely be running.  An unreadable pid is
        treated as alive (conservative).
        """
        if self._dir is None:
            return
        try:
            owner = self._lock_owner()
        except FileNotFoundError:
            return
        if owner is not None and not self._pid_alive(owner):
            self._reclaim_stale_compact_lock()

    # -- eviction lock --------------------------------------------------

    def _evict_lock_path(self) -> pathlib.Path:
        return self._dir / EVICT_LOCK_FILENAME

    def _acquire_evict_lock(
        self, timeout_s: float = EVICT_LOCK_TIMEOUT_S
    ) -> bool:
        """Take ``evict.lock``, waiting up to *timeout_s*; False on timeout.

        Unlike the compact lock (held for a whole offline rewrite and
        therefore contended loudly), eviction decisions are short, so
        contention is waited out with exponential backoff.  A holder
        whose pid died is reclaimed through the same atomic-rename
        takeover as the compact lock.
        """
        path = self._evict_lock_path()
        self._dir.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + timeout_s
        delay = 0.001
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    owner = self._read_lock_owner(path)
                except FileNotFoundError:
                    continue  # freed between open and read; retry now
                if owner is not None and not self._pid_alive(owner):
                    self._reclaim_stale_lock(path)
                    continue
                if time.monotonic() >= deadline:
                    self._evict_lock_timeouts.inc()
                    return False
                time.sleep(delay)
                delay = min(delay * 2, 0.05)
                continue
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            return True

    def _release_evict_lock(self) -> None:
        self._evict_lock_path().unlink(missing_ok=True)

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self._dir, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def compact(self) -> dict:
        """Rewrite live records into one fresh sealed segment.

        Offline pass (no concurrent writers of the same directory):
        live records are written — in LRU order, oldest first, behind a
        ``compaction`` snapshot marker — to a temp file, fsynced,
        atomically renamed to the next sealed segment, and only then
        are the superseded segments deleted.  Tombstoned keys, stale
        duplicates, touch records and damaged lines are all dropped;
        the visible view is unchanged.  Crashing at any step leaves a
        directory that reopens to the same view.
        """
        started = time.perf_counter()
        with self._lock:
            if self._dir is None:
                return {"compacted": False, "reason": "in-memory store"}
            self._acquire_compact_lock()
            try:
                return self._compact_locked(started)
            finally:
                # Released even on a simulated crash (the crash_hook
                # raises); a real kill leaves the lock for the next
                # open's stale-pid reclaim.
                self._release_compact_lock()

    def _compact_locked(self, started: float) -> dict:
        """The compaction body; caller holds both locks."""
        self._crash_point("compact:begin")
        # Fold in anything siblings appended since our last sync: the
        # snapshot supersedes every current file, so a record missing
        # from the view here would be *deleted* with its segment.
        self._sync()
        old_files = self._segment_files()
        bytes_before = sum(self._file_size(file) for file in old_files)
        live = list(self._lru_order)
        tmp = self._dir / COMPACT_TMP_FILENAME
        self._dir.mkdir(parents=True, exist_ok=True)
        tmp.unlink(missing_ok=True)
        target = self._dir / f"segment-{self._next_segment_number():06d}.jsonl"
        with tmp.open("wb") as handle:
            handle.write(
                _encode(
                    {
                        "format": STORE_FORMAT_VERSION,
                        "key": "",
                        "kind": KIND_COMPACTION,
                        "payload": {"records": len(live)},
                    }
                )
            )
            for position, key in enumerate(live):
                if position == len(live) // 2:
                    self._crash_point("compact:mid-write")
                handle.write(_encode(self._index[key]))
            # in-flight leases survive compaction: a sibling mid-
            # evaluation must still find its claim after the rewrite.
            # Expired leases are the one thing compaction may drop —
            # they are usurpable anyway, so no reader's behaviour
            # changes.
            now = time.time()
            carried_claims = {
                key: claim
                for key, claim in self._claims.items()
                if key not in self._index
                and not self._claim_expired_by(claim, now)
            }
            for key, claim in carried_claims.items():
                handle.write(
                    _encode(
                        {
                            "format": STORE_FORMAT_VERSION,
                            "key": key,
                            "kind": KIND_CLAIM,
                            "payload": claim,
                        }
                    )
                )
            handle.flush()
            os.fsync(handle.fileno())
        self._crash_point("compact:pre-rename")
        os.replace(tmp, target)
        self._fsync_dir()
        self._crash_point("compact:post-rename")
        for position, file in enumerate(old_files):
            file.unlink(missing_ok=True)
            if position == 0:
                self._crash_point("compact:mid-delete")
        self._fsync_dir()
        self._active_bytes = 0
        # the damaged lines were dropped with their segments
        self._corrupt_count.set(0)
        self._unrecognised_count.set(0)
        self._corrupt_detail = []
        bytes_after = target.stat().st_size
        # the snapshot segment is the only file now, fully replayed by
        # construction; _dir_mtime stays stale so the next sync re-scans
        self._seg_progress = {target.name: bytes_after}
        self._claims = carried_claims
        return {
            "compacted": True,
            "segments_removed": len(old_files),
            "records_written": len(live),
            "claims_carried": len(carried_claims),
            "bytes_before": bytes_before,
            "bytes_after": bytes_after,
            "bytes_reclaimed": bytes_before - bytes_after,
            "duration_s": time.perf_counter() - started,
        }

    # ------------------------------------------------------------------
    # introspection: stats + verify
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Occupancy, file layout, damage and traffic counters."""
        with self._lock:
            sealed = self._sealed_files()
            file_bytes = sum(self._file_size(file) for file in sealed)
            if self._file is not None and self._file.exists():
                file_bytes += self._file_size(self._file)
            by_kind: dict[str, int] = {}
            for record in self._index.values():
                by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
            return {
                "backend": "disk" if self._dir is not None else "memory",
                "path": str(self._dir) if self._dir is not None else None,
                "sealed_segments": len(sealed),
                "file_bytes": file_bytes,
                "active_bytes": self._active_bytes,
                "live_records": len(self._index),
                "live_bytes": self._live_bytes,
                "live_by_kind": dict(sorted(by_kind.items())),
                "hits": self._hits.value,
                "misses": self._misses.value,
                "evictions": self._evictions.value,
                "touches_written": self._touches_written.value,
                "live_claims": len(self._claims),
                "claims_written": self._claims_written.value,
                "releases_written": self._releases_written.value,
                "claims_reclaimed": self._claims_reclaimed.value,
                "corrupt_lines": int(self._corrupt_count.value),
                "unrecognised_lines": int(self._unrecognised_count.value),
                "syncs": self._syncs.value,
                "reloads": self._reloads.value,
                "load_races": self._load_races.value,
                "evict_lock_timeouts": self._evict_lock_timeouts.value,
                "limits": {
                    "max_bytes": self.max_bytes,
                    "max_records": self.max_records,
                    "segment_max_bytes": self.segment_max_bytes,
                },
            }

    def verify(self, deep: bool = False) -> dict:
        """Re-scan the directory and report every consistency problem.

        Parses all segments from disk (independently of the in-memory
        index), counting damaged lines with their locations, suspect
        keys (not a content hash), and — with ``deep=True`` — payloads
        of ``mhla_result`` records that no longer rebuild.  The replayed
        view is cross-checked against the in-memory index; ``ok`` is
        True only for a fully clean store.

        A directory another process is actively writing is *reported*,
        never an error: files that vanish mid-scan (a concurrent seal's
        rename or a compaction's cleanup) are counted in
        ``vanished_files``, in-flight artifacts (``compact.tmp``, lock
        holders, empty just-claimed segment placeholders) land under
        ``in_progress``, and ``directory_changed`` marks a scan whose
        start and end signatures differ.  An unstable scan cannot fail
        ``ok`` on a memory mismatch — the mismatch is expected mid-write
        — but real damage (corrupt lines, suspect keys) still does.
        """
        with self._lock:
            if self._dir is not None:
                self._sync()
            signature_before = (
                self._dir_mtime_now(),
                self._file_size(self._file) if self._file is not None else 0,
            )
            files = []
            view: dict[str, dict] = {}
            claims_view: dict[str, dict] = {}
            damage: list[dict] = []
            suspect_keys = 0
            vanished_files = 0
            seal_placeholders = 0
            for file in self._segment_files():
                try:
                    text = file.read_text()
                except FileNotFoundError:
                    vanished_files += 1
                    continue
                if not text and file.name != RESULTS_FILENAME:
                    # empty sealed segment: a sibling's just-claimed
                    # seal target, about to receive the active file
                    seal_placeholders += 1
                    continue
                counts = {
                    "file": file.name,
                    "lines": 0,
                    "records": 0,
                    "touches": 0,
                    "tombstones": 0,
                    "compactions": 0,
                    "claims": 0,
                    "releases": 0,
                    "corrupt": 0,
                    "unrecognised": 0,
                }
                for lineno, line in enumerate(text.splitlines(), start=1):
                    if not line.strip():
                        continue
                    counts["lines"] += 1
                    record, reason = self._parse_line(line)
                    if record is None:
                        counts[reason] += 1
                        if len(damage) < _CORRUPT_DETAIL_CAP:
                            damage.append(
                                {
                                    "file": file.name,
                                    "line": lineno,
                                    "reason": reason,
                                }
                            )
                        continue
                    kind = record["kind"]
                    if kind == KIND_COMPACTION:
                        counts["compactions"] += 1
                        view.clear()
                        claims_view.clear()
                    elif kind == KIND_TOMBSTONE:
                        counts["tombstones"] += 1
                        view.pop(record["key"], None)
                    elif kind == KIND_TOUCH:
                        counts["touches"] += 1
                    elif kind == KIND_CLAIM:
                        counts["claims"] += 1
                        # mirror _replay_claim: first unexpired claim
                        # wins, a stored result makes the claim noise
                        key = record["key"]
                        payload = record.get("payload", {})
                        if key not in view and isinstance(
                            payload.get("claim_id"), str
                        ):
                            current = claims_view.get(key)
                            if current is None or self._claim_expired_by(
                                current, payload.get("claimed_at", 0.0)
                            ):
                                claims_view[key] = payload
                    elif kind == KIND_RELEASE:
                        counts["releases"] += 1
                        key = record["key"]
                        current = claims_view.get(key)
                        claim_id = record.get("payload", {}).get("claim_id")
                        if (
                            current is not None
                            and current.get("claim_id") == claim_id
                        ):
                            del claims_view[key]
                    else:
                        counts["records"] += 1
                        if not is_content_key(record["key"]):
                            suspect_keys += 1
                        view[record["key"]] = record
                        claims_view.pop(record["key"], None)
                files.append(counts)
            deep_checked = 0
            deep_failures: list[dict] = []
            if deep:
                for key, record in view.items():
                    if record["kind"] != KIND_RESULT:
                        continue
                    deep_checked += 1
                    try:
                        result_from_state(record["payload"])
                    except ReproError as error:
                        if len(deep_failures) < _CORRUPT_DETAIL_CAP:
                            deep_failures.append(
                                {"key": key, "error": str(error)}
                            )
            corrupt = sum(counts["corrupt"] for counts in files)
            unrecognised = sum(counts["unrecognised"] for counts in files)
            matches_memory = (
                set(view) == set(self._index)
                if self._dir is not None
                else True
            )
            signature_after = (
                self._dir_mtime_now(),
                self._file_size(self._file) if self._file is not None else 0,
            )
            directory_changed = (
                self._dir is not None and signature_before != signature_after
            )
            in_progress = self._in_progress_artifacts(seal_placeholders)
            # a scan raced by a live writer legitimately diverges from
            # this process's view; only a *stable* mismatch is damage
            unstable = directory_changed or vanished_files > 0
            by_kind: dict[str, int] = {}
            for record in view.values():
                by_kind[record["kind"]] = by_kind.get(record["kind"], 0) + 1
            # gc() prunes expired leases from memory without logging,
            # so claims agreement is informational only: it must never
            # make `ok` depend on wall-clock time
            claims_match_memory = (
                set(claims_view) == set(self._claims)
                if self._dir is not None
                else True
            )
            return {
                "files": files,
                "live_records": len(view),
                "live_claims": len(claims_view),
                "claims_match_memory": claims_match_memory,
                "live_by_kind": dict(sorted(by_kind.items())),
                "corrupt_lines": corrupt,
                "unrecognised_lines": unrecognised,
                "damage": damage,
                "suspect_keys": suspect_keys,
                "matches_memory": matches_memory,
                "vanished_files": vanished_files,
                "directory_changed": directory_changed,
                "in_progress": in_progress,
                "deep_checked": deep_checked,
                "deep_failures": deep_failures,
                "ok": (
                    corrupt == 0
                    and unrecognised == 0
                    and suspect_keys == 0
                    and (matches_memory or unstable)
                    and not deep_failures
                ),
            }

    def _in_progress_artifacts(self, seal_placeholders: int) -> dict:
        """Evidence of concurrent writer activity, for ``verify()``."""
        artifacts: dict = {"seal_placeholders": seal_placeholders}
        if self._dir is None:
            return artifacts
        artifacts["compact_tmp"] = (self._dir / COMPACT_TMP_FILENAME).exists()
        for label, name in (
            ("compact_lock_pid", COMPACT_LOCK_FILENAME),
            ("evict_lock_pid", EVICT_LOCK_FILENAME),
        ):
            try:
                artifacts[label] = self._read_lock_owner(self._dir / name)
            except FileNotFoundError:
                artifacts[label] = None
        return artifacts

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._index:
                return True
            if self._dir is not None and self._sync():
                return key in self._index
            return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def path(self) -> pathlib.Path | None:
        """The active segment file (None for in-memory stores)."""
        return self._file

    @property
    def directory(self) -> pathlib.Path | None:
        """The cache directory (None for in-memory stores)."""
        return self._dir

    @property
    def live_bytes(self) -> int:
        """Encoded bytes of the live records (the eviction currency)."""
        with self._lock:
            return self._live_bytes

    # ------------------------------------------------------------------
    # exploration results
    # ------------------------------------------------------------------

    def get_result(self, key: str) -> MhlaResult | None:
        """Rebuild the memoized exploration result under *key*, if any."""
        payload = self.get(key, KIND_RESULT)
        if payload is None:
            return None
        return result_from_state(payload)

    def put_result(self, key: str, result: MhlaResult) -> bool:
        """Memoize one exploration result under *key*."""
        return self.put(key, KIND_RESULT, result_to_state(result))
