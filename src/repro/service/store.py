"""Content-addressed result store (JSON-lines + in-memory index).

One cache directory holds one ``results.jsonl`` file; every line is a
self-contained record::

    {"format": 1, "key": "<sha256>", "kind": "<record kind>",
     "payload": {...}}

``key`` is the request's content hash (:mod:`repro.service.keys`), so
the store never needs to interpret the request — identical requests
address identical lines.  Records are append-only: a re-``put`` of a
known key is a no-op (content-addressed records cannot change meaning),
and loading replays the file in order with last-key-wins, so an
interrupted writer at worst loses its final line.  A truncated trailing
line (killed process) is skipped with a warning rather than poisoning
the whole store.

``path=None`` gives a purely in-memory store with the same interface —
the service uses it to deduplicate within one process when no cache
directory is configured.

Exploration results go through the lossless state round-trip of
:mod:`repro.analysis.export` (``result_to_state``/``result_from_state``),
so a rebuilt :class:`~repro.core.mhla.MhlaResult` renders byte-identical
report tables to the one that was stored.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading

from repro.analysis.export import result_from_state, result_to_state
from repro.core.mhla import MhlaResult

STORE_FORMAT_VERSION = 1
"""Bumped when the record layout changes incompatibly."""

RESULTS_FILENAME = "results.jsonl"
"""The one file a cache directory contains."""

KIND_RESULT = "mhla_result"
KIND_FUZZ_VERDICT = "fuzz_verdict"


class ResultStore:
    """Memoized request results, keyed by content hash.

    Parameters
    ----------
    path:
        Cache *directory* (created on first write).  ``None`` keeps the
        store purely in memory.
    """

    def __init__(self, path: str | pathlib.Path | None = None):
        self._lock = threading.Lock()
        self._index: dict[str, dict] = {}
        self._file = (
            pathlib.Path(path) / RESULTS_FILENAME if path is not None else None
        )
        if self._file is not None and self._file.exists():
            self._load(self._file)

    def _load(self, file: pathlib.Path) -> None:
        for lineno, line in enumerate(
            file.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(
                    f"warning: {file}:{lineno}: skipping corrupt cache line",
                    file=sys.stderr,
                )
                continue
            if (
                not isinstance(record, dict)
                or record.get("format") != STORE_FORMAT_VERSION
                or not isinstance(record.get("key"), str)
                or not isinstance(record.get("kind"), str)
                or not isinstance(record.get("payload"), dict)
            ):
                print(
                    f"warning: {file}:{lineno}: skipping unrecognised record",
                    file=sys.stderr,
                )
                continue
            self._index[record["key"]] = record

    # ------------------------------------------------------------------
    # generic records
    # ------------------------------------------------------------------

    def get(self, key: str, kind: str) -> dict | None:
        """Payload stored under *key*, or None (kind mismatch = miss)."""
        with self._lock:
            record = self._index.get(key)
        if record is None or record.get("kind") != kind:
            return None
        return record["payload"]

    def put(self, key: str, kind: str, payload: dict) -> bool:
        """Store *payload* under *key*; False if the key already exists.

        Existing keys are left untouched: records are content-addressed,
        so a second writer by definition holds the same content.
        """
        record = {
            "format": STORE_FORMAT_VERSION,
            "key": key,
            "kind": kind,
            "payload": payload,
        }
        with self._lock:
            if key in self._index:
                return False
            self._index[key] = record
            if self._file is not None:
                self._file.parent.mkdir(parents=True, exist_ok=True)
                # One os-level append of the complete line: O_APPEND
                # plus a single unbuffered write keeps records from
                # interleaving even when several processes share the
                # cache directory.
                line = json.dumps(record, separators=(",", ":")) + "\n"
                with self._file.open("ab", buffering=0) as handle:
                    handle.write(line.encode("utf-8"))
        return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def path(self) -> pathlib.Path | None:
        """The backing JSONL file (None for in-memory stores)."""
        return self._file

    # ------------------------------------------------------------------
    # exploration results
    # ------------------------------------------------------------------

    def get_result(self, key: str) -> MhlaResult | None:
        """Rebuild the memoized exploration result under *key*, if any."""
        payload = self.get(key, KIND_RESULT)
        if payload is None:
            return None
        return result_from_state(payload)

    def put_result(self, key: str, result: MhlaResult) -> bool:
        """Memoize one exploration result under *key*."""
        return self.put(key, KIND_RESULT, result_to_state(result))
