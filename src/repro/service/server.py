"""Socket front ends: one exploration service, many networked tenants.

Two transports serve the same line-delimited JSON-RPC protocol
``repro serve`` runs over stdio — one request object per line, one
response object per line, encoded by the same
:func:`~repro.service.rpc.encode_response`, so a request answered over
a socket is byte-identical to the stdio answer:

* :class:`AsyncExplorationServer` (the default) — a **multiplexed
  event-loop transport**: one asyncio loop accepts and frames every
  connection, each request is dispatched to a bounded thread executor
  over the shared service, and responses are written back **as they
  complete — out of order within a connection**.  A slow ``submit``
  pipelined ahead of a fast ``stats`` no longer head-of-line-blocks
  it, and thousands of mostly-idle connections cost file descriptors,
  not threads.
* :class:`ExplorationServer` (``--transport threads``) — the
  thread-per-connection reference implementation: requests on one
  connection are answered strictly in request order, at the cost of
  one thread per connection and head-of-line blocking behind slow
  requests.

Multi-tenancy model (both transports):

* every **connection** gets its own :class:`JsonRpcFrontend` over the
  one shared :class:`ExplorationService`, so the result cache and
  in-flight deduplication span all tenants while a client's
  ``shutdown`` request ends only *its* connection (a multi-tenant
  server must not be killable by one tenant; stop the server itself
  with SIGINT/SIGTERM or :meth:`~ExplorationServer.drain`);
* a **bounded admission queue** (``max_pending``) caps *requests in
  flight* across all connections — not connections, which may idle in
  the thousands.  A request arriving past the cap is answered
  immediately with error ``-32001`` (``SERVER_BUSY``) instead of
  queueing unboundedly — clients back off and retry;
* **graceful drain**: SIGINT/SIGTERM (or ``drain()``) stops accepting
  connections, answers new requests on live connections with
  ``-32002`` (draining), waits for in-flight requests to finish, then
  closes the listener and shuts the persistent worker pool down.

The ``stats`` RPC gains a ``"server"`` section (transport name,
connections, requests, busy/draining rejections, in-flight gauge) on
top of the service, store and pool counters.

Unix-socket path claiming is serialized through an O_EXCL pid-stamped
``<path>.lock`` file (the ``evict.lock`` pattern from
:mod:`repro.service.store`): two servers starting simultaneously on
the same dead socket path cannot both conclude it is stale and race
the unlink/bind — one wins the lock, reclaims and binds; the other
then probes a *live* socket and refuses.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import os
import pathlib
import signal
import socket
import socketserver
import threading
import time

from repro.errors import ServiceError, ValidationError
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.search.config import AssignerSpec
from repro.service.queue import ExplorationService
from repro.service.rpc import (
    SERVER_BUSY,
    SERVER_DRAINING,
    JsonRpcFrontend,
    encode_response,
)

__all__ = [
    "DEFAULT_EXECUTOR_WORKERS",
    "DEFAULT_MAX_PENDING",
    "AsyncExplorationServer",
    "ExplorationServer",
    "parse_listen_address",
    "serve_until_signalled",
]

DEFAULT_MAX_PENDING = 64
"""Default cap on requests in flight across all connections."""

DEFAULT_EXECUTOR_WORKERS = min(32, (os.cpu_count() or 4) + 4)
"""Dispatch threads behind the async transport's event loop."""

_ACCEPT_BACKLOG = 1024
"""Listen backlog for connection storms (kernel-capped at somaxconn)."""

_READLINE_LIMIT = 16 * 1024 * 1024
"""Per-line framing cap for the async reader.  Batch requests carry
whole grids of cells in one line; 16 MiB keeps any realistic batch
frameable while still bounding a garbage client's memory use."""

_SOCKET_LOCK_TIMEOUT_S = 5.0
"""Longest a starting server waits for a sibling's ``<path>.lock``."""

_DRAINING_MESSAGE = "server is draining and accepts no new requests"


def parse_listen_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` -> a bind address (port 0 = ephemeral).

    Raises :class:`ValidationError` on malformed input so the CLI
    reports it as a user error (exit 2), not a crash.
    """
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValidationError(
            f"--listen needs HOST:PORT, got {text!r} "
            "(use 127.0.0.1:0 for an ephemeral port)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"--listen port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValidationError(f"--listen port out of range: {port}")
    return host, port


def _request_id(line: str):
    """Best-effort request id for out-of-band rejections."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError:
        return None
    return request.get("id") if isinstance(request, dict) else None


def _line_trace_id(line: str) -> str | None:
    """The request's ``trace_id`` param, if any (tracing-only parse)."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(request, dict):
        return None
    params = request.get("params")
    if isinstance(params, dict):
        trace_id = params.get("trace_id")
        if isinstance(trace_id, str):
            return trace_id
    return None


def _make_server_metrics() -> tuple[MetricsRegistry, dict]:
    """One registry + the shared counter set for a server transport."""
    registry = MetricsRegistry()
    counters = {
        "connections_total": registry.counter(
            "repro_server_connections_total", "Connections accepted."),
        "requests_total": registry.counter(
            "repro_server_requests_total", "Requests admitted."),
        "rejected_busy": registry.counter(
            "repro_server_rejected_busy_total",
            "Requests rejected by the admission cap (-32001)."),
        "rejected_draining": registry.counter(
            "repro_server_rejected_draining_total",
            "Requests rejected while draining (-32002)."),
    }
    return registry, counters


def _reject(line: str, code: int, message: str) -> dict:
    return {
        "jsonrpc": "2.0",
        "id": _request_id(line),
        "error": {"code": code, "message": message},
    }


def _busy_message(max_pending: int) -> str:
    return (
        f"server busy: {max_pending} request(s) already in "
        "flight; back off and retry"
    )


def _is_shutdown_request(line: str) -> bool:
    """Would this line, dispatched, succeed as a ``shutdown``?

    The async reader stops reading a connection at the first
    successful ``shutdown`` — exactly where the serialized transports
    stop — while the request itself still flows through the normal
    dispatch path for a byte-identical acknowledgement.  The substring
    probe keeps the double-parse off the hot path.
    """
    if '"shutdown"' not in line:
        return False
    try:
        request = json.loads(line)
    except json.JSONDecodeError:
        return False
    if not isinstance(request, dict) or request.get("method") != "shutdown":
        return False
    return isinstance(request.get("params", {}), dict)


# ----------------------------------------------------------------------
# unix socket path claiming
# ----------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - priv pid
        return True
    return True


def _read_lock_owner(path: pathlib.Path) -> int | None:
    try:
        return int(path.read_text().strip())
    except FileNotFoundError:
        raise
    except (OSError, ValueError):
        return None


def _reclaim_dead_lock(path: pathlib.Path) -> bool:
    """Atomically take over a dead claimer's lock file; True on success.

    Same rename-takeover protocol as the store's ``evict.lock``:
    unlinking by name would race a concurrent reclaimer that already
    replaced the stale file with its own live lock, so the suspect
    file is renamed to a per-pid name first (atomic, single winner)
    and only the renamed file is inspected and deleted.
    """
    claim = path.with_name(f"{path.name}.reclaim-{os.getpid()}")
    try:
        os.rename(path, claim)
    except OSError:
        return False  # someone else reclaimed (or released) first
    try:
        owner = int(claim.read_text().strip())
    except (OSError, ValueError):
        owner = None
    if owner is not None and _pid_alive(owner):
        # we lost a read/decide race against a live claimer: restore
        try:  # pragma: no cover - narrow double-race window
            os.rename(claim, path)
        except OSError:
            claim.unlink(missing_ok=True)
        return False
    claim.unlink(missing_ok=True)
    return True


@contextlib.contextmanager
def _socket_path_lock(path: pathlib.Path):
    """Serialize stale-socket reclaim + bind on *path* across processes.

    O_EXCL pid-stamped ``<path>.lock``, held from the liveness probe
    through the bind: without it, two servers starting simultaneously
    on the same dead socket path can both probe it stale and race the
    unlink/bind.  A lock whose recorded pid is dead (crashed claimer)
    is taken over; a live claimer is waited on briefly, then refused.
    """
    lock_path = path.with_name(path.name + ".lock")
    deadline = time.monotonic() + _SOCKET_LOCK_TIMEOUT_S
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            try:
                owner = _read_lock_owner(lock_path)
            except FileNotFoundError:
                continue  # freed between open and read; retry the create
            if owner is not None and not _pid_alive(owner):
                _reclaim_dead_lock(lock_path)
                continue
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"socket path {path} is being claimed by another "
                    f"server (pid {owner}); retry once it finishes, or "
                    f"delete {lock_path} if that process is gone"
                ) from None
            time.sleep(0.05)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    try:
        yield
    finally:
        lock_path.unlink(missing_ok=True)


def _probe_socket_path(path: pathlib.Path) -> None:
    """Remove a *stale* socket file; refuse to steal a live one.

    Callers hold :func:`_socket_path_lock`, so probe + unlink + the
    subsequent bind are atomic against sibling servers.
    """
    if not path.exists():
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.settimeout(0.2)
        probe.connect(str(path))
    except OSError:
        path.unlink(missing_ok=True)  # dead leftover; reuse the name
    else:
        raise ServiceError(
            f"socket path {path} already has a live server attached"
        )
    finally:
        probe.close()


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a private frontend over the shared service."""

    def handle(self) -> None:  # pragma: no cover - exercised via server
        self.server.exploration._handle_connection(self.rfile, self.wfile)


class _ThreadingTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # socketserver's default backlog of 5 puts a connection storm into
    # kernel SYN-retransmit backoff (seconds per connect); match the
    # async transport's accept backlog instead
    request_queue_size = _ACCEPT_BACKLOG


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True
        request_queue_size = _ACCEPT_BACKLOG

else:  # pragma: no cover - non-posix
    _ThreadingUnixServer = None


class ExplorationServer:
    """Thread-per-connection JSON-RPC server over one shared service.

    The serialized reference transport (``repro serve --transport
    threads``): responses on a connection come back strictly in
    request order, so a slow request head-of-line-blocks every
    pipelined request behind it, and every connection costs a thread.
    :class:`AsyncExplorationServer` is the multiplexed default.

    Parameters
    ----------
    service:
        The shared :class:`ExplorationService` (cache + dedup + pool).
    listen:
        ``(host, port)`` to bind a TCP listener (port 0 picks an
        ephemeral port; see :attr:`address` for the bound one).
    socket_path:
        Path for a Unix domain socket listener instead of TCP.
        Exactly one of *listen*/*socket_path* must be given.
    default_assigner:
        Applied to submitted cells without their own assigner object.
    max_pending:
        Admission cap: requests in flight across all connections
        beyond this are answered with ``SERVER_BUSY``.
    """

    def __init__(
        self,
        service: ExplorationService,
        listen: tuple[str, int] | None = None,
        socket_path: str | pathlib.Path | None = None,
        default_assigner: AssignerSpec | None = None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        if (listen is None) == (socket_path is None):
            raise ServiceError(
                "pass exactly one of listen=(host, port) or socket_path"
            )
        if max_pending <= 0:
            raise ServiceError("max_pending must be positive")
        self.service = service
        self.default_assigner = default_assigner
        self.max_pending = max_pending
        self._admission = threading.BoundedSemaphore(max_pending)
        self._draining = threading.Event()
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._in_flight = 0
        self._connections_active = 0
        self.metrics, self._counters = _make_server_metrics()
        self.metrics.gauge(
            "repro_server_in_flight", "Requests currently executing."
        ).set_fn(lambda: self._in_flight)
        self.metrics.gauge(
            "repro_server_connections_active", "Open client connections."
        ).set_fn(lambda: self._connections_active)
        self.metrics.gauge(
            "repro_server_max_pending", "Admission cap."
        ).set_fn(lambda: self.max_pending)
        self._serving = threading.Event()
        self._socket_path = (
            pathlib.Path(socket_path) if socket_path is not None else None
        )
        if self._socket_path is not None:
            if _ThreadingUnixServer is None:  # pragma: no cover - non-posix
                raise ServiceError(
                    "unix domain sockets are not available on this platform"
                )
            with _socket_path_lock(self._socket_path):
                _probe_socket_path(self._socket_path)
                self._server = _ThreadingUnixServer(
                    str(self._socket_path), _Handler
                )
        else:
            self._server = _ThreadingTcpServer(listen, _Handler)
        # the handler reaches back through the socketserver instance
        self._server.exploration = self

    # ------------------------------------------------------------------
    # connection + request handling
    # ------------------------------------------------------------------

    def _handle_connection(self, rfile, wfile) -> None:
        frontend = JsonRpcFrontend(
            self.service,
            default_assigner=self.default_assigner,
            server_stats=self.stats,
            server_registry=self.metrics,
        )
        with self._state_lock:
            self._counters["connections_total"].inc()
            self._connections_active += 1
        obs_trace.emit("accept", transport="threads")
        try:
            for raw in rfile:
                response = self._handle_request(
                    frontend, raw.decode("utf-8", errors="replace")
                )
                if response is None:
                    continue
                wfile.write((encode_response(response) + "\n").encode("utf-8"))
                wfile.flush()
                if not frontend.running:
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass  # the tenant went away; its in-flight work is cached
        finally:
            with self._state_lock:
                self._connections_active -= 1

    def _handle_request(
        self, frontend: JsonRpcFrontend, line: str
    ) -> dict | None:
        if not line.strip():
            return None
        trace_id = _line_trace_id(line) if obs_trace.enabled() else None
        if self._draining.is_set():
            self._counters["rejected_draining"].inc()
            obs_trace.emit(
                "reject.draining", trace_id=trace_id, transport="threads"
            )
            return _reject(line, SERVER_DRAINING, _DRAINING_MESSAGE)
        if not self._admission.acquire(blocking=False):
            self._counters["rejected_busy"].inc()
            obs_trace.emit(
                "reject.busy", trace_id=trace_id, transport="threads"
            )
            return _reject(line, SERVER_BUSY, _busy_message(self.max_pending))
        with self._state_lock:
            self._in_flight += 1
        self._counters["requests_total"].inc()
        obs_trace.emit("admit", trace_id=trace_id, transport="threads")
        try:
            return frontend.handle_line(line)
        finally:
            self._admission.release()
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, path for Unix."""
        if self._socket_path is not None:
            return str(self._socket_path)
        return self._server.server_address

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`drain` (blocking)."""
        self._serving.set()
        self._server.serve_forever(poll_interval=0.05)

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="mhla-server", daemon=True
        )
        thread.start()
        return thread

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful stop: reject new work, let in-flight work finish.

        Returns True when the server went idle within *timeout*
        (False means in-flight requests were abandoned to their daemon
        threads).  Idempotent.  Also shuts the persistent worker pool
        down, so no worker processes outlive the server.
        """
        from repro.analysis.pool import get_pool

        self._draining.set()
        self.service.wake_sibling_waiters()
        if self._serving.is_set():
            self._server.shutdown()  # stops serve_forever + accepting
            self._serving.clear()
        with self._idle:
            drained = self._idle.wait_for(
                lambda: self._in_flight == 0, timeout
            )
        self._server.server_close()
        if self._socket_path is not None:
            self._socket_path.unlink(missing_ok=True)
        get_pool().shutdown()
        return drained

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Connection/admission counters (the ``stats`` RPC's server part)."""
        with self._state_lock:
            return {
                "transport": "threads",
                "connections_total": self._counters["connections_total"].value,
                "connections_active": self._connections_active,
                "requests_total": self._counters["requests_total"].value,
                "in_flight": self._in_flight,
                "rejected_busy": self._counters["rejected_busy"].value,
                "rejected_draining": (
                    self._counters["rejected_draining"].value
                ),
                "max_pending": self.max_pending,
                # no executor on this transport (each connection gets a
                # thread); the key is present so both transports expose
                # an identical stats shape.
                "executor_workers": None,
                "draining": self._draining.is_set(),
            }


class AsyncExplorationServer:
    """Multiplexed event-loop JSON-RPC server over one shared service.

    One asyncio loop (on its own thread) accepts and frames every
    connection; each admitted request line is handed to a bounded
    :class:`~concurrent.futures.ThreadPoolExecutor` running the
    reentrant :meth:`JsonRpcFrontend.dispatch`, and the response is
    written back the moment it completes — **out of order within a
    connection**, correlated by JSON-RPC ``id``.  A slow ``submit``
    pipelined ahead of a fast ``stats`` on the same socket therefore
    no longer blocks it, and idle connections cost a file descriptor
    each, not a thread.

    Contract-compatible with :class:`ExplorationServer`: byte-identical
    response encoding, per-connection ``shutdown`` (reading stops at
    the first successful shutdown; every in-flight response, including
    the acknowledgement, is still written before the connection
    closes), ``-32001`` admission over *in-flight requests*, and
    ``-32002`` graceful drain.

    Parameters
    ----------
    service, listen, socket_path, default_assigner, max_pending:
        As for :class:`ExplorationServer`.
    executor_workers:
        Dispatch threads.  Bounds evaluation concurrency; requests
        beyond it queue (still counted in flight, so ``max_pending``
        caps the queue, not the sky).
    """

    def __init__(
        self,
        service: ExplorationService,
        listen: tuple[str, int] | None = None,
        socket_path: str | pathlib.Path | None = None,
        default_assigner: AssignerSpec | None = None,
        max_pending: int = DEFAULT_MAX_PENDING,
        executor_workers: int | None = None,
    ):
        if (listen is None) == (socket_path is None):
            raise ServiceError(
                "pass exactly one of listen=(host, port) or socket_path"
            )
        if max_pending <= 0:
            raise ServiceError("max_pending must be positive")
        workers = (
            executor_workers
            if executor_workers is not None
            else DEFAULT_EXECUTOR_WORKERS
        )
        if workers <= 0:
            raise ServiceError("executor_workers must be positive")
        self.service = service
        self.default_assigner = default_assigner
        self.max_pending = max_pending
        self.executor_workers = workers
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="mhla-rpc"
        )
        self._state_lock = threading.Lock()
        self._in_flight = 0
        self._connections_active = 0
        self.metrics, self._counters = _make_server_metrics()
        self.metrics.gauge(
            "repro_server_in_flight", "Requests currently executing."
        ).set_fn(lambda: self._in_flight)
        self.metrics.gauge(
            "repro_server_connections_active", "Open client connections."
        ).set_fn(lambda: self._connections_active)
        self.metrics.gauge(
            "repro_server_max_pending", "Admission cap."
        ).set_fn(lambda: self.max_pending)
        self.metrics.gauge(
            "repro_server_executor_workers", "Dispatch-thread count."
        ).set_fn(lambda: self.executor_workers)
        self._draining = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self._started = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._aserver: asyncio.AbstractServer | None = None
        self._idle_async: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._connection_tasks: set = set()
        self._writers: set = set()
        self._socket_path = (
            pathlib.Path(socket_path) if socket_path is not None else None
        )
        # Bind synchronously in the constructor — before the loop even
        # exists — so `address` (an ephemeral port, announced on
        # stdout by the CLI) is known immediately, and a live socket
        # path is refused at construction like the threading server.
        if self._socket_path is not None:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-posix
                raise ServiceError(
                    "unix domain sockets are not available on this platform"
                )
            with _socket_path_lock(self._socket_path):
                _probe_socket_path(self._socket_path)
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    sock.bind(str(self._socket_path))
                except OSError:
                    sock.close()
                    raise
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind(listen)
            except OSError:
                sock.close()
                raise
        sock.listen(_ACCEPT_BACKLOG)
        sock.setblocking(False)
        self._listen_sock = sock
        # cache now: drain closes the socket, but the address should
        # stay readable afterwards (error messages, tests, logs)
        self._bound_address = (
            str(self._socket_path)
            if self._socket_path is not None
            else sock.getsockname()
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, path for Unix."""
        return self._bound_address

    def serve_forever(self) -> None:
        """Run the event loop until :meth:`drain` (blocking)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
            leftovers = [
                task for task in asyncio.all_tasks(loop) if not task.done()
            ]
            for task in leftovers:
                task.cancel()
            if leftovers:
                loop.run_until_complete(
                    asyncio.gather(*leftovers, return_exceptions=True)
                )
        finally:
            loop.close()

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="mhla-aserver", daemon=True
        )
        self._thread = thread
        thread.start()
        self._started.wait()
        return thread

    async def _main(self) -> None:
        self._idle_async = asyncio.Event()
        self._idle_async.set()
        self._stopped = asyncio.Event()
        self._aserver = await asyncio.start_server(
            self._serve_connection,
            sock=self._listen_sock,
            limit=_READLINE_LIMIT,
        )
        self._started.set()
        await self._stopped.wait()

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful stop: reject new work, let in-flight work finish.

        Returns True when all in-flight requests completed within
        *timeout* (False means stragglers were abandoned to the
        executor).  Idempotent; also shuts the persistent worker pool
        down so no worker processes outlive the server.
        """
        from repro.analysis.pool import get_pool

        with self._drain_lock:
            first = not self._drain_started
            self._drain_started = True
        self._draining.set()
        # sibling-claim pollers may be napping in their 250 ms backoff
        # on executor threads; cut the naps short so in-flight work
        # resolves promptly instead of riding out the sleep
        self.service.wake_sibling_waiters()
        if not first:
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            return True
        drained = True
        if self._loop is not None and self._started.is_set():
            future = asyncio.run_coroutine_threadsafe(
                self._drain_async(timeout), self._loop
            )
            try:
                drained = future.result(
                    None if timeout is None else timeout + 10.0
                )
            except (
                concurrent.futures.TimeoutError,
                concurrent.futures.CancelledError,
                RuntimeError,
            ):  # pragma: no cover - loop died mid-drain
                drained = False
            if self._thread is not None:
                self._thread.join(timeout=10.0)
        else:
            self._listen_sock.close()
        self._executor.shutdown(wait=False)
        if self._socket_path is not None:
            self._socket_path.unlink(missing_ok=True)
        get_pool().shutdown()
        return drained

    async def _drain_async(self, timeout: float | None) -> bool:
        self._aserver.close()
        await self._aserver.wait_closed()
        try:
            await asyncio.wait_for(self._idle_async.wait(), timeout)
            drained = True
        except asyncio.TimeoutError:
            drained = False
        # in-flight work is done (or abandoned): close the remaining
        # connections so their reader tasks see EOF and wind down
        for writer in list(self._writers):
            writer.close()
        if self._connection_tasks:
            await asyncio.wait(list(self._connection_tasks), timeout=5.0)
        self._stopped.set()
        return drained

    # ------------------------------------------------------------------
    # connection + request handling (event-loop thread only)
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        frontend = JsonRpcFrontend(
            self.service,
            default_assigner=self.default_assigner,
            server_stats=self.stats,
            server_registry=self.metrics,
        )
        with self._state_lock:
            self._counters["connections_total"].inc()
            self._connections_active += 1
        obs_trace.emit("accept", transport="async")
        task = asyncio.current_task()
        self._connection_tasks.add(task)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        dispatches: set = set()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # line beyond _READLINE_LIMIT: framing is lost for
                    # good on this connection; drop it
                    break
                if not raw:
                    break  # EOF: the tenant closed its side
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                trace_id = (
                    _line_trace_id(line) if obs_trace.enabled() else None
                )
                if self._draining.is_set():
                    self._counters["rejected_draining"].inc()
                    obs_trace.emit(
                        "reject.draining",
                        trace_id=trace_id,
                        transport="async",
                    )
                    await self._write(
                        write_lock,
                        writer,
                        _reject(line, SERVER_DRAINING, _DRAINING_MESSAGE),
                    )
                    continue
                with self._state_lock:
                    admitted = self._in_flight < self.max_pending
                    if admitted:
                        self._in_flight += 1
                if admitted:
                    self._counters["requests_total"].inc()
                    obs_trace.emit(
                        "admit", trace_id=trace_id, transport="async"
                    )
                else:
                    self._counters["rejected_busy"].inc()
                    obs_trace.emit(
                        "reject.busy", trace_id=trace_id, transport="async"
                    )
                    await self._write(
                        write_lock,
                        writer,
                        _reject(
                            line, SERVER_BUSY, _busy_message(self.max_pending)
                        ),
                    )
                    continue
                self._idle_async.clear()
                dispatch = asyncio.get_running_loop().create_task(
                    self._dispatch(frontend, line, writer, write_lock)
                )
                dispatches.add(dispatch)
                dispatch.add_done_callback(dispatches.discard)
                if _is_shutdown_request(line):
                    # per-connection shutdown: stop reading; in-flight
                    # responses (incl. the acknowledgement) still land
                    break
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            # tenant vanished (or the transport closed mid-drain under
            # us); in-flight work below still completes into the cache
            pass
        finally:
            if dispatches:
                await asyncio.gather(*dispatches, return_exceptions=True)
            self._writers.discard(writer)
            self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            with self._state_lock:
                self._connections_active -= 1

    async def _dispatch(self, frontend, line, writer, write_lock) -> None:
        try:
            response, _shutdown = await asyncio.get_running_loop(
            ).run_in_executor(self._executor, frontend.dispatch, line)
            if response is not None:
                await self._write(write_lock, writer, response)
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # tenant went away mid-response; the work is cached
        finally:
            with self._state_lock:
                self._in_flight -= 1
                idle = self._in_flight == 0
            if idle:
                self._idle_async.set()

    async def _write(self, write_lock, writer, response: dict) -> None:
        # one line per response, whole lines only: the lock keeps two
        # completing dispatches from interleaving a connection's bytes
        async with write_lock:
            writer.write((encode_response(response) + "\n").encode("utf-8"))
            await writer.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Connection/admission counters (the ``stats`` RPC's server part)."""
        with self._state_lock:
            return {
                "transport": "async",
                "connections_total": self._counters["connections_total"].value,
                "connections_active": self._connections_active,
                "requests_total": self._counters["requests_total"].value,
                "in_flight": self._in_flight,
                "rejected_busy": self._counters["rejected_busy"].value,
                "rejected_draining": (
                    self._counters["rejected_draining"].value
                ),
                "max_pending": self.max_pending,
                "executor_workers": self.executor_workers,
                "draining": self._draining.is_set(),
            }


def serve_until_signalled(
    server: "ExplorationServer | AsyncExplorationServer",
) -> int:
    """Run *server* until SIGINT/SIGTERM, then drain; the CLI body.

    The server loop runs on a background thread while the main thread
    waits for a signal — calling shutdown from inside a signal handler
    on the serving thread would deadlock, so the handler only sets an
    event.  Works for either transport: both expose ``start()`` and a
    thread-safe ``drain()``.
    """
    stop = threading.Event()

    def request_stop(_signum, _frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, request_stop)
    server.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.drain()
    return 0
