"""Socket front end: one exploration service, many networked tenants.

:class:`ExplorationServer` wraps the same :class:`JsonRpcFrontend`
``repro serve`` runs over stdio, behind a threading stream server —
TCP (``--listen HOST:PORT``) or a Unix domain socket (``--socket
PATH``).  The wire protocol is identical to the stdio mode: one
JSON-RPC request object per line, one response object per line, in
request order per connection, encoded by the same
:func:`~repro.service.rpc.encode_response` — so a request answered
over a socket is byte-identical to the stdio answer.

Multi-tenancy model:

* every **connection** gets its own :class:`JsonRpcFrontend` over the
  one shared :class:`ExplorationService`, so the result cache and
  in-flight deduplication span all tenants while a client's
  ``shutdown`` request ends only *its* connection (a multi-tenant
  server must not be killable by one tenant; stop the server itself
  with SIGINT/SIGTERM or :meth:`ExplorationServer.drain`);
* a **bounded admission queue** (``max_pending``) caps requests in
  flight across all connections.  A request arriving past the cap is
  answered immediately with error ``-32001`` (``SERVER_BUSY``) instead
  of queueing unboundedly — clients back off and retry;
* **graceful drain**: SIGINT/SIGTERM (or :meth:`drain`) stops
  accepting connections, answers new requests on live connections with
  ``-32002`` (draining), waits for in-flight requests to finish, then
  closes the listener and shuts the persistent worker pool down.

The ``stats`` RPC gains a ``"server"`` section (connections, requests,
busy/draining rejections, in-flight gauge) on top of the service,
store and pool counters.
"""

from __future__ import annotations

import json
import pathlib
import signal
import socket
import socketserver
import threading

from repro.errors import ServiceError, ValidationError
from repro.search.config import AssignerSpec
from repro.service.queue import ExplorationService
from repro.service.rpc import (
    SERVER_BUSY,
    SERVER_DRAINING,
    JsonRpcFrontend,
    encode_response,
)

__all__ = [
    "DEFAULT_MAX_PENDING",
    "ExplorationServer",
    "parse_listen_address",
    "serve_until_signalled",
]

DEFAULT_MAX_PENDING = 64
"""Default cap on requests in flight across all connections."""


def parse_listen_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` -> a bind address (port 0 = ephemeral).

    Raises :class:`ValidationError` on malformed input so the CLI
    reports it as a user error (exit 2), not a crash.
    """
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise ValidationError(
            f"--listen needs HOST:PORT, got {text!r} "
            "(use 127.0.0.1:0 for an ephemeral port)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(
            f"--listen port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValidationError(f"--listen port out of range: {port}")
    return host, port


def _request_id(line: str):
    """Best-effort request id for out-of-band rejections."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError:
        return None
    return request.get("id") if isinstance(request, dict) else None


class _Handler(socketserver.StreamRequestHandler):
    """One connection: a private frontend over the shared service."""

    def handle(self) -> None:  # pragma: no cover - exercised via server
        self.server.exploration._handle_connection(self.rfile, self.wfile)


class _ThreadingTcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # pragma: no cover - non-posix
    _ThreadingUnixServer = None


class ExplorationServer:
    """Line-delimited JSON-RPC socket server over one shared service.

    Parameters
    ----------
    service:
        The shared :class:`ExplorationService` (cache + dedup + pool).
    listen:
        ``(host, port)`` to bind a TCP listener (port 0 picks an
        ephemeral port; see :attr:`address` for the bound one).
    socket_path:
        Path for a Unix domain socket listener instead of TCP.
        Exactly one of *listen*/*socket_path* must be given.
    default_assigner:
        Applied to submitted cells without their own assigner object.
    max_pending:
        Admission cap: requests in flight across all connections
        beyond this are answered with ``SERVER_BUSY``.
    """

    def __init__(
        self,
        service: ExplorationService,
        listen: tuple[str, int] | None = None,
        socket_path: str | pathlib.Path | None = None,
        default_assigner: AssignerSpec | None = None,
        max_pending: int = DEFAULT_MAX_PENDING,
    ):
        if (listen is None) == (socket_path is None):
            raise ServiceError(
                "pass exactly one of listen=(host, port) or socket_path"
            )
        if max_pending <= 0:
            raise ServiceError("max_pending must be positive")
        self.service = service
        self.default_assigner = default_assigner
        self.max_pending = max_pending
        self._admission = threading.BoundedSemaphore(max_pending)
        self._draining = threading.Event()
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._in_flight = 0
        self._connections_total = 0
        self._connections_active = 0
        self._requests_total = 0
        self._rejected_busy = 0
        self._rejected_draining = 0
        self._serving = threading.Event()
        self._socket_path = (
            pathlib.Path(socket_path) if socket_path is not None else None
        )
        if self._socket_path is not None:
            if _ThreadingUnixServer is None:  # pragma: no cover - non-posix
                raise ServiceError(
                    "unix domain sockets are not available on this platform"
                )
            self._claim_socket_path(self._socket_path)
            self._server = _ThreadingUnixServer(
                str(self._socket_path), _Handler
            )
        else:
            self._server = _ThreadingTcpServer(listen, _Handler)
        # the handler reaches back through the socketserver instance
        self._server.exploration = self

    @staticmethod
    def _claim_socket_path(path: pathlib.Path) -> None:
        """Remove a *stale* socket file; refuse to steal a live one."""
        if not path.exists():
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.2)
            probe.connect(str(path))
        except OSError:
            path.unlink(missing_ok=True)  # dead leftover; reuse the name
        else:
            raise ServiceError(
                f"socket path {path} already has a live server attached"
            )
        finally:
            probe.close()

    # ------------------------------------------------------------------
    # connection + request handling
    # ------------------------------------------------------------------

    def _handle_connection(self, rfile, wfile) -> None:
        frontend = JsonRpcFrontend(
            self.service,
            default_assigner=self.default_assigner,
            server_stats=self.stats,
        )
        with self._state_lock:
            self._connections_total += 1
            self._connections_active += 1
        try:
            for raw in rfile:
                response = self._handle_request(
                    frontend, raw.decode("utf-8", errors="replace")
                )
                if response is None:
                    continue
                wfile.write((encode_response(response) + "\n").encode("utf-8"))
                wfile.flush()
                if not frontend.running:
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass  # the tenant went away; its in-flight work is cached
        finally:
            with self._state_lock:
                self._connections_active -= 1

    def _handle_request(
        self, frontend: JsonRpcFrontend, line: str
    ) -> dict | None:
        if not line.strip():
            return None
        if self._draining.is_set():
            with self._state_lock:
                self._rejected_draining += 1
            return self._reject(
                line,
                SERVER_DRAINING,
                "server is draining and accepts no new requests",
            )
        if not self._admission.acquire(blocking=False):
            with self._state_lock:
                self._rejected_busy += 1
            return self._reject(
                line,
                SERVER_BUSY,
                f"server busy: {self.max_pending} request(s) already in "
                "flight; back off and retry",
            )
        with self._state_lock:
            self._in_flight += 1
            self._requests_total += 1
        try:
            return frontend.handle_line(line)
        finally:
            self._admission.release()
            with self._idle:
                self._in_flight -= 1
                self._idle.notify_all()

    @staticmethod
    def _reject(line: str, code: int, message: str) -> dict:
        return {
            "jsonrpc": "2.0",
            "id": _request_id(line),
            "error": {"code": code, "message": message},
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, path for Unix."""
        if self._socket_path is not None:
            return str(self._socket_path)
        return self._server.server_address

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`drain` (blocking)."""
        self._serving.set()
        self._server.serve_forever(poll_interval=0.05)

    def start(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a background thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="mhla-server", daemon=True
        )
        thread.start()
        return thread

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Graceful stop: reject new work, let in-flight work finish.

        Returns True when the server went idle within *timeout*
        (False means in-flight requests were abandoned to their daemon
        threads).  Idempotent.  Also shuts the persistent worker pool
        down, so no worker processes outlive the server.
        """
        from repro.analysis.pool import get_pool

        self._draining.set()
        if self._serving.is_set():
            self._server.shutdown()  # stops serve_forever + accepting
            self._serving.clear()
        with self._idle:
            drained = self._idle.wait_for(
                lambda: self._in_flight == 0, timeout
            )
        self._server.server_close()
        if self._socket_path is not None:
            self._socket_path.unlink(missing_ok=True)
        get_pool().shutdown()
        return drained

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Connection/admission counters (the ``stats`` RPC's server part)."""
        with self._state_lock:
            return {
                "connections_total": self._connections_total,
                "connections_active": self._connections_active,
                "requests_total": self._requests_total,
                "in_flight": self._in_flight,
                "rejected_busy": self._rejected_busy,
                "rejected_draining": self._rejected_draining,
                "max_pending": self.max_pending,
                "draining": self._draining.is_set(),
            }


def serve_until_signalled(server: ExplorationServer) -> int:
    """Run *server* until SIGINT/SIGTERM, then drain; the CLI body.

    The server loop runs on a background thread while the main thread
    waits for a signal — calling ``shutdown()`` from inside a signal
    handler on the serving thread would deadlock, so the handler only
    sets an event.
    """
    stop = threading.Event()

    def request_stop(_signum, _frame) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, request_stop)
    server.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.drain()
    return 0
