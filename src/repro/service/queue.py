"""Batched exploration job queue with in-flight deduplication.

:class:`ExplorationService` sits between clients and
:class:`~repro.analysis.sweep.ParallelSweepRunner`:

* **cache first** — a submission whose content key is already in the
  :class:`~repro.service.store.ResultStore` is served without touching
  a worker;
* **deduplicate in flight** — identical submissions (same content key)
  made before the batch runs share one pending job, and a submission
  for a key another thread is currently evaluating waits for that
  evaluation instead of repeating it.  Every unique cell is evaluated
  at most once per store lifetime — and with a shared cache directory,
  at most once per *fleet*: :meth:`ExplorationService.flush` leases
  each key through the store's ``claim`` records before evaluating, so
  a key a sibling ``repro serve`` process is already computing is
  awaited (poll with backoff), not recomputed, and a crashed sibling's
  lease expires and is taken over (see
  :meth:`~repro.service.store.ResultStore.try_claim`);
* **batch** — pending jobs accumulate until :meth:`flush` (called
  implicitly by :meth:`result` and :meth:`run`) fans the whole batch
  across the runner's pool in one go, amortising pool start-up over
  many cells.

**Bounded state** — a long-lived service (``repro serve``) must not
grow with its history.  ``_jobs`` holds only in-flight work (pending or
running), so its size is O(in-flight); finished jobs move into a
completed-job **ring buffer** capped at ``completed_jobs_limit``
entries and pruned by ``completed_job_ttl`` seconds, kept only so
``poll``/``result`` can report a recent failure's error text.  Once a
finished job ages out, ``poll`` answers from the store (``done`` for
memoized keys, ``unknown`` otherwise) — forgetting history is the
price of bounded memory, and resubmitting an ``unknown`` key is always
correct.  The store bounds itself separately via its eviction limits
(see :mod:`repro.service.store`).

The service is thread-safe: many client threads may submit/poll/await
concurrently (the JSON-RPC front end in :mod:`repro.service.rpc` is one
such client).  Evaluation itself happens in the flushing thread (and
its worker processes); other threads block on per-job events.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Iterable, Sequence

from repro.analysis.sweep import ParallelSweepRunner, SweepCell, SweepCellResult
from repro.core.mhla import MhlaResult
from repro.errors import ServiceError
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.service.keys import cell_key
from repro.service.store import (
    CLAIM_DONE,
    CLAIM_WON,
    ResultStore,
)

#: Job/request states reported by :meth:`ExplorationService.poll`.
PENDING = "pending"      # queued, not yet handed to the runner
RUNNING = "running"      # in the runner (this or another thread's flush)
DONE = "done"            # result available in the store
FAILED = "failed"        # evaluation raised; error text recorded
UNKNOWN = "unknown"      # never submitted (or aged out of history)

DEFAULT_COMPLETED_JOBS_LIMIT = 1024
"""Finished job stubs retained for poll/result reporting."""

_POLL_INITIAL_S = 0.02
"""First sleep while waiting on a sibling server's in-flight claim."""

_POLL_MAX_S = 0.25
"""Backoff cap for the sibling-claim poll loop."""


class _Job:
    """One in-flight evaluation (shared by all duplicate submissions)."""

    __slots__ = (
        "key", "cell", "status", "error", "event", "finished_at", "trace_id",
    )

    def __init__(self, key: str, cell: SweepCell, trace_id: str | None = None):
        self.key = key
        self.cell = cell
        self.status = PENDING
        self.error: str | None = None
        self.event = threading.Event()
        self.finished_at: float | None = None
        self.trace_id = trace_id


#: (field, help) for every service lifetime counter, in exposition order.
_STAT_FIELDS: tuple[tuple[str, str], ...] = (
    ("submitted", "Cells submitted to this service."),
    ("cache_hits", "Submissions served straight from the result store."),
    ("deduplicated", "Submissions merged into an already in-flight job."),
    ("evaluated", "Cells this server ran through the sweep runner."),
    ("failed", "Jobs that finished with an error (incl. aborted batches)."),
    ("aborted", "Jobs failed by a batch-level abort, never individually run."),
    ("jobs_expired", "Finished job stubs dropped from the bounded ring."),
    ("claims_won", "Keys whose fleet lease this server won and evaluated."),
    ("claims_yielded", "Keys leased to a sibling server when we flushed."),
    ("claims_reclaimed", "Lapsed sibling leases this server took over."),
    ("resolved_remote", "Jobs resolved by a sibling server's result."),
)


class ServiceStats:
    """Counters over one service lifetime (monotonic, cumulative).

    Backed by typed :class:`~repro.obs.metrics.Counter` instruments in
    the service's metrics registry; reads stay plain attribute access
    (``stats.submitted`` is an ``int``) so callers and tests never see
    the instruments.  **Exactly-once accounting invariant** — every
    submission lands in precisely one of these classes::

        submitted == cache_hits + deduplicated + evaluated + aborted
                     + resolved_remote + in-flight jobs

    (``failed`` is not in the partition: it overlaps ``evaluated`` for
    cells whose run returned an error, and covers ``aborted`` for jobs
    a batch-level crash failed without running.)
    """

    _COUNTER_HELP = dict(_STAT_FIELDS)

    def __init__(self, registry: MetricsRegistry | None = None):
        if registry is None:
            registry = MetricsRegistry()
        self._counters = {
            field: registry.counter(f"repro_service_{field}_total", help_text)
            for field, help_text in _STAT_FIELDS
        }

    def inc(self, field: str, amount: int = 1) -> None:
        self._counters[field].inc(amount)

    def __getattr__(self, name: str) -> int:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(name)

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served from the store."""
        submitted = self.submitted
        return self.cache_hits / submitted if submitted else 0.0

    def as_dict(self) -> dict:
        snapshot = {field: self._counters[field].value
                    for field, _ in _STAT_FIELDS}
        snapshot["hit_rate"] = (
            snapshot["cache_hits"] / snapshot["submitted"]
            if snapshot["submitted"]
            else 0.0
        )
        return snapshot


class ExplorationService:
    """Memoizing, batching front end over the sweep runner.

    Parameters
    ----------
    store:
        Result store (defaults to a fresh in-memory one, which still
        deduplicates within this service's lifetime).
    jobs:
        Worker processes for batch evaluation (see
        :class:`~repro.analysis.sweep.ParallelSweepRunner`).
    runner:
        Injectable runner (tests substitute a counting one).
    completed_jobs_limit:
        Finished job stubs kept for status/error reporting; the oldest
        are dropped first (ring buffer).
    completed_job_ttl:
        Additionally drop finished stubs older than this many seconds
        (``None`` = age never expires them).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int | None = None,
        runner: ParallelSweepRunner | None = None,
        completed_jobs_limit: int = DEFAULT_COMPLETED_JOBS_LIMIT,
        completed_job_ttl: float | None = None,
    ):
        if completed_jobs_limit < 0:
            raise ServiceError("completed_jobs_limit must be >= 0")
        self.store = store if store is not None else ResultStore()
        self.runner = runner if runner is not None else ParallelSweepRunner(jobs=jobs)
        self.metrics = MetricsRegistry()
        self.stats = ServiceStats(self.metrics)
        self.flush_seconds = self.metrics.histogram(
            "repro_service_flush_seconds",
            "Wall time of one flush batch (claim + evaluate + await).",
        )
        self.metrics.gauge(
            "repro_service_pending", "Jobs queued for the next flush."
        ).set_fn(lambda: len(self._pending))
        self.metrics.gauge(
            "repro_service_in_flight", "Jobs submitted but not finished."
        ).set_fn(lambda: len(self._jobs))
        self.metrics.gauge(
            "repro_service_completed_retained",
            "Finished job stubs in the bounded ring.",
        ).set_fn(lambda: len(self._completed))
        self.completed_jobs_limit = completed_jobs_limit
        self.completed_job_ttl = completed_job_ttl
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}           # in-flight only
        self._completed: OrderedDict[str, _Job] = OrderedDict()
        self._pending: list[str] = []
        self._background_flush: threading.Thread | None = None
        self._sibling_wakeup = threading.Event()

    # ------------------------------------------------------------------
    # bounded completed-job history (all helpers run under self._lock)
    # ------------------------------------------------------------------

    def _finish(self, job: _Job, status: str, error: str | None = None) -> None:
        """Move one job out of the in-flight map into the ring buffer."""
        job.status = status
        job.error = error
        job.finished_at = time.monotonic()
        self._jobs.pop(job.key, None)
        self._completed.pop(job.key, None)
        self._completed[job.key] = job
        while len(self._completed) > self.completed_jobs_limit:
            self._completed.popitem(last=False)
            self.stats.inc("jobs_expired")

    def _prune_completed(self) -> None:
        if self.completed_job_ttl is None or not self._completed:
            return
        horizon = time.monotonic() - self.completed_job_ttl
        while self._completed:
            oldest = next(iter(self._completed.values()))
            if oldest.finished_at is None or oldest.finished_at > horizon:
                break
            self._completed.popitem(last=False)
            self.stats.inc("jobs_expired")

    def _lookup_finished(self, key: str) -> _Job | None:
        self._prune_completed()
        return self._completed.get(key)

    # ------------------------------------------------------------------
    # client API: submit / poll / result
    # ------------------------------------------------------------------

    def submit(
        self,
        cell: SweepCell,
        key: str | None = None,
        trace_id: str | None = None,
    ) -> str:
        """Enqueue one cell; returns its content key (the job ticket).

        Cache hits and duplicates of in-flight jobs return immediately
        with the same ticket — the ticket is a pure function of the
        request, so clients may even compute it themselves (and pass
        it as *key* to skip re-deriving it).  A key whose previous
        evaluation failed (or aged out of the completed ring) is
        simply re-queued: a transient worker failure must not poison
        the key for the service's lifetime.

        *trace_id* (optional, client-minted) tags the job's span
        events; it never participates in the key.
        """
        if key is None:
            key = cell_key(cell)
        with self._lock:
            self.stats.inc("submitted")
            if key in self.store:
                self.stats.inc("cache_hits")
                outcome = "cache_hit"
            elif key in self._jobs:
                self.stats.inc("deduplicated")
                outcome = "dedup"
            else:
                self._prune_completed()
                self._jobs[key] = _Job(key, cell, trace_id=trace_id)
                self._pending.append(key)
                outcome = "queued"
        obs_trace.emit("submit", trace_id=trace_id, key=key, outcome=outcome)
        return key

    def poll(self, key: str) -> str:
        """Current state of a ticket (``done`` covers store hits).

        A finished job that aged out of the bounded history reports
        ``done`` while its result is still memoized and ``unknown``
        once that record is gone too (resubmitting is then correct).
        """
        with self._lock:
            if key in self.store:
                return DONE
            job = self._jobs.get(key)
            if job is not None:
                return job.status
            finished = self._lookup_finished(key)
            if finished is None:
                return UNKNOWN
            if finished.status == DONE:
                # the store (checked first) no longer holds the result:
                # it was evicted, so the ticket is effectively unknown
                self._completed.pop(key, None)
                return UNKNOWN
            return finished.status

    def kick(self) -> None:
        """Start a background flush if anything is pending (non-blocking).

        Submit-then-poll clients never call :meth:`result`, so without
        this a pending batch would wait forever; the RPC front end
        kicks on every poll that observes a pending job.  At most one
        background flush runs at a time — a second kick while it is
        alive is a no-op, and jobs submitted meanwhile are picked up
        by the next kick (or by any explicit flush).
        """
        with self._lock:
            if not self._pending:
                return
            if (
                self._background_flush is not None
                and self._background_flush.is_alive()
            ):
                return
            thread = threading.Thread(
                target=self.flush, name="mhla-service-flush", daemon=True
            )
            self._background_flush = thread
        thread.start()

    def result(self, key: str, timeout: float | None = None) -> MhlaResult:
        """The result for a ticket, evaluating the batch if needed.

        Raises :class:`ServiceError` for unknown tickets, failed
        evaluations, or a timeout waiting on another thread's batch.
        """
        with self._lock:
            job = self._jobs.get(key)
            needs_flush = job is not None and job.status == PENDING
            if job is not None:
                # Pin before any flush can put+evict the record: while
                # the job is still in _jobs, its result is not in the
                # store yet (flush puts and finishes atomically under
                # this lock), so the pin always precedes the put.
                self.store.pin(key)
        if job is None:
            result = self.store.get_result(key)
            if result is not None:
                return result
            with self._lock:
                finished = self._lookup_finished(key)
            if finished is not None and finished.status == FAILED:
                raise ServiceError(f"job {key!r} failed: {finished.error}")
            raise ServiceError(f"unknown job ticket {key!r}")
        # The pin was taken under the lock that observed the job still
        # in flight, so the record cannot be put and evicted before it.
        try:
            if needs_flush:
                self.flush()
            if not job.event.wait(timeout):
                raise ServiceError(f"timed out waiting for job {key!r}")
            if job.status == FAILED:
                raise ServiceError(f"job {key!r} failed: {job.error}")
            result = self.store.get_result(key)
            if result is None:  # pragma: no cover - store/job invariant
                raise ServiceError(f"job {key!r} finished but left no result")
            return result
        finally:
            self.store.unpin(key)

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Evaluate every pending job as one batch; returns batch size.

        Concurrent flushes are safe: each grabs only jobs still pending
        under the lock, so a job is handed to the runner exactly once.

        With a shared cache directory the batch is first partitioned by
        :meth:`~repro.service.store.ResultStore.try_claim`: keys whose
        lease we win are evaluated here; keys a live sibling server
        already leased are *not* re-evaluated — they are polled with
        backoff until the sibling's result lands.  A sibling that
        crashes or gives up lets its lease expire (or releases it), at
        which point the poller takes the lease over and evaluates the
        key itself, so every job resolves: exactly-once fleet-wide in
        the steady state, at-least-once under crashes, never zero.
        """
        flush_start = time.monotonic()
        with self._lock:
            batch = [
                self._jobs[key]
                for key in self._pending
                if key in self._jobs and self._jobs[key].status == PENDING
            ]
            self._pending.clear()
            for job in batch:
                job.status = RUNNING
        if not batch:
            return 0
        obs_trace.emit("dispatch", batch=len(batch))
        local: list[_Job] = []
        waiting: list[_Job] = []
        claims: dict[str, str] = {}
        for job in batch:
            status, claim_id = self.store.try_claim(
                job.key, trace_id=job.trace_id
            )
            if status == CLAIM_DONE:
                # a sibling finished it between submit and now
                with self._lock:
                    self.stats.inc("resolved_remote")
                    self._finish(job, DONE)
                job.event.set()
                obs_trace.emit(
                    "claim.done", trace_id=job.trace_id, key=job.key
                )
            elif status == CLAIM_WON:
                claims[job.key] = claim_id
                local.append(job)
                with self._lock:
                    self.stats.inc("claims_won")
                obs_trace.emit(
                    "claim.won",
                    trace_id=job.trace_id,
                    key=job.key,
                    claim_id=claim_id,
                )
            else:
                waiting.append(job)
                with self._lock:
                    self.stats.inc("claims_yielded")
                obs_trace.emit(
                    "claim.yielded", trace_id=job.trace_id, key=job.key
                )
        try:
            if local:
                self._evaluate(local, claims)
        finally:
            # even when the local batch aborts, jobs leased to siblings
            # must still resolve — their waiters are blocked on us
            if waiting:
                self._await_siblings(waiting)
            self.flush_seconds.observe(time.monotonic() - flush_start)
        return len(batch)

    def _evaluate(self, batch: list[_Job], claims: dict[str, str]) -> None:
        """Run one claimed batch through the runner and store results.

        A successful ``put`` retires the key's claim by itself; failed
        or aborted jobs release theirs explicitly so sibling servers
        can retry immediately instead of waiting out the lease.
        """
        abort_reason = "batch evaluation aborted"
        eval_start = time.monotonic()
        try:
            outcomes = self.runner.run(tuple(job.cell for job in batch))
            eval_ms = round((time.monotonic() - eval_start) * 1000.0, 3)
            with self._lock:
                for job, outcome in zip(batch, outcomes):
                    if outcome.ok:
                        self.store.put_result(job.key, outcome.result)
                        self._finish(job, DONE)
                        self.stats.inc("evaluated")
                    else:
                        self._release_claim(job.key, claims)
                        self._finish(job, FAILED, outcome.error)
                        self.stats.inc("evaluated")
                        self.stats.inc("failed")
            for job, outcome in zip(batch, outcomes):
                obs_trace.emit(
                    "evaluate",
                    trace_id=job.trace_id,
                    key=job.key,
                    batch=len(batch),
                    batch_ms=eval_ms,
                    ok=bool(outcome.ok),
                )
                if outcome.ok:
                    obs_trace.emit(
                        "store.put", trace_id=job.trace_id, key=job.key
                    )
        except Exception as error:
            # name the real cause: "aborted" alone sends whoever reads
            # the job's error text hunting through server logs
            abort_reason = (
                "batch evaluation aborted: "
                f"{type(error).__name__}: {error}"
            )
            raise
        finally:
            # Waiters must never hang: anything the batch left in
            # RUNNING (runner/store raised) fails loudly instead.
            with self._lock:
                for job in batch:
                    if job.status == RUNNING:
                        self._release_claim(job.key, claims)
                        self._finish(job, FAILED, abort_reason)
                        self.stats.inc("failed")
                        self.stats.inc("aborted")
            for job in batch:
                job.event.set()

    def _release_claim(self, key: str, claims: dict[str, str]) -> None:
        claim_id = claims.pop(key, None)
        if claim_id is not None:
            self.store.release_claim(key, claim_id)

    def wake_sibling_waiters(self) -> None:
        """Wake sleeping sibling-claim pollers for one early re-check.

        A draining server calls this so a poller asleep in its 250 ms
        backoff re-checks (and, if the sibling's result just landed,
        resolves) immediately instead of riding out the full sleep.
        The event is pulsed — set then cleared — so later waits resume
        the normal backoff cadence.
        """
        self._sibling_wakeup.set()
        self._sibling_wakeup.clear()

    def _await_siblings(self, waiting: list[_Job]) -> None:
        """Resolve jobs whose keys are leased to sibling servers.

        Pure polling — no lock held between rounds: the sibling's
        result arrives through the shared directory, not through this
        process.  Each round every unresolved key is checked; the wait
        backs off from 20 ms to 250 ms, so a fast sibling costs almost
        no latency and a slow one costs at most 4 polls/s.  The wait
        is an interruptible event wait, never a bare ``time.sleep``:
        it only ever runs on a worker/executor thread (the async
        transport's event loop is never in here), and
        :meth:`wake_sibling_waiters` can cut it short during drain.
        """
        delay = _POLL_INITIAL_S
        pending = list(waiting)
        while pending:
            pending = [job for job in pending if not self._check_sibling(job)]
            if not pending:
                return
            self._sibling_wakeup.wait(delay)
            delay = min(delay * 2, _POLL_MAX_S)

    def _check_sibling(self, job: _Job) -> bool:
        """One poll of a sibling-leased job; True when it resolved.

        Resolution is either the sibling's result landing in the store,
        or its lease lapsing (crash, failure, explicit release) — then
        this server takes the lease over and evaluates the key itself,
        so a died-mid-evaluation sibling never strands the job.
        """
        if job.key in self.store:
            with self._lock:
                self.stats.inc("resolved_remote")
                self._finish(job, DONE)
            job.event.set()
            obs_trace.emit(
                "claim.resolved", trace_id=job.trace_id, key=job.key
            )
            return True
        status, claim_id = self.store.try_claim(job.key, trace_id=job.trace_id)
        if status == CLAIM_DONE:
            with self._lock:
                self.stats.inc("resolved_remote")
                self._finish(job, DONE)
            job.event.set()
            obs_trace.emit(
                "claim.resolved", trace_id=job.trace_id, key=job.key
            )
            return True
        if status == CLAIM_WON:
            with self._lock:
                self.stats.inc("claims_reclaimed")
            obs_trace.emit(
                "claim.reclaimed",
                trace_id=job.trace_id,
                key=job.key,
                claim_id=claim_id,
            )
            try:
                self._evaluate([job], {job.key: claim_id})
            except Exception:
                # the job was already failed (and its event set) by
                # _evaluate's cleanup; keep resolving the others
                pass
            return True
        return False

    def run(
        self,
        cells: Iterable[SweepCell],
        trace_id: str | None = None,
    ) -> tuple[SweepCellResult, ...]:
        """Drop-in for :meth:`ParallelSweepRunner.run`, cache-backed.

        Submits every cell, flushes once, and returns outcomes in cell
        order.  Results always come back through the store's lossless
        round-trip, so a cold run's output is byte-identical to the
        warm re-run that serves the same keys from disk.
        """
        cell_list = tuple(cells)
        # Pin the whole batch: its results must all be live at once, so
        # an eviction bound smaller than the batch goes soft until the
        # outcomes are collected (gc() re-tightens it below).
        keys = [cell_key(cell) for cell in cell_list]
        for key in keys:
            self.store.pin(key)
        try:
            jobs: list[_Job | None] = []
            for cell, key in zip(cell_list, keys):
                self.submit(cell, key=key, trace_id=trace_id)
                # Hold the job reference now: the completed ring may
                # age the stub out before we collect (batches larger
                # than the ring), but the object itself keeps the
                # status/error we need.
                with self._lock:
                    jobs.append(self._jobs.get(key) or self._completed.get(key))
            self.flush()
            outcomes = []
            for cell, key, job in zip(cell_list, keys, jobs):
                if job is not None:
                    job.event.wait()
                result = self.store.get_result(key)
                if result is not None:
                    outcomes.append(SweepCellResult(cell=cell, result=result))
                else:
                    error = (
                        job.error
                        if job is not None and job.error
                        else "result missing"
                    )
                    outcomes.append(
                        SweepCellResult(cell=cell, result=None, error=error)
                    )
            return tuple(outcomes)
        finally:
            for key in keys:
                self.store.unpin(key)
            self.store.gc()

    def service_stats(self) -> dict:
        """Counters plus queue/store occupancy, for the ``stats`` RPC.

        The service-level section (lifetime counters + queue
        occupancy) is one snapshot taken under ``self._lock`` — the
        same lock every mutator holds — so a concurrent flush can
        never be seen half-applied (e.g. ``evaluated`` bumped but
        ``in_flight`` not yet shrunk).  The ``store`` and ``pool``
        sections are separate components with their own locks; each is
        internally consistent, snapshotted by its own ``stats()``.

        ``pool`` reports the process-wide persistent worker pool: a
        healthy long-lived service shows ``cold_starts`` stuck at 1
        (or 0 while serial) however many sweeps it has flushed.
        """
        from dataclasses import asdict

        from repro.analysis.pool import get_pool

        with self._lock:
            self._prune_completed()
            snapshot = {
                **self.stats.as_dict(),
                "pending": len(self._pending),
                "in_flight": len(self._jobs),
                "completed_retained": len(self._completed),
                "completed_jobs_limit": self.completed_jobs_limit,
            }
        snapshot["store_records"] = len(self.store)
        snapshot["store"] = self.store.stats()
        snapshot["pool"] = asdict(get_pool().stats())
        return snapshot

    def metrics_registries(self, extra=()) -> list[MetricsRegistry]:
        """Every registry behind this serving stack, exposition-ready.

        Service + store + process-wide pool + the global registry
        (search instruments, dropped-event counter) + any *extra*
        (the socket server passes its own).
        """
        from repro.analysis.pool import get_pool
        from repro.obs.metrics import global_registry

        return [
            self.metrics,
            self.store.metrics,
            get_pool().metrics,
            global_registry(),
            *extra,
        ]
