"""Batched exploration job queue with in-flight deduplication.

:class:`ExplorationService` sits between clients and
:class:`~repro.analysis.sweep.ParallelSweepRunner`:

* **cache first** — a submission whose content key is already in the
  :class:`~repro.service.store.ResultStore` is served without touching
  a worker;
* **deduplicate in flight** — identical submissions (same content key)
  made before the batch runs share one pending job, and a submission
  for a key another thread is currently evaluating waits for that
  evaluation instead of repeating it.  Every unique cell is evaluated
  at most once per store lifetime;
* **batch** — pending jobs accumulate until :meth:`flush` (called
  implicitly by :meth:`result` and :meth:`run`) fans the whole batch
  across the runner's pool in one go, amortising pool start-up over
  many cells.

The service is thread-safe: many client threads may submit/poll/await
concurrently (the JSON-RPC front end in :mod:`repro.service.rpc` is one
such client).  Evaluation itself happens in the flushing thread (and
its worker processes); other threads block on per-job events.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.sweep import ParallelSweepRunner, SweepCell, SweepCellResult
from repro.core.mhla import MhlaResult
from repro.errors import ServiceError
from repro.service.keys import cell_key
from repro.service.store import ResultStore

#: Job/request states reported by :meth:`ExplorationService.poll`.
PENDING = "pending"      # queued, not yet handed to the runner
RUNNING = "running"      # in the runner (this or another thread's flush)
DONE = "done"            # result available in the store
FAILED = "failed"        # evaluation raised; error text recorded
UNKNOWN = "unknown"      # never submitted to this service/store


class _Job:
    """One in-flight evaluation (shared by all duplicate submissions)."""

    __slots__ = ("key", "cell", "status", "error", "event")

    def __init__(self, key: str, cell: SweepCell):
        self.key = key
        self.cell = cell
        self.status = PENDING
        self.error: str | None = None
        self.event = threading.Event()


@dataclass
class ServiceStats:
    """Counters over one service lifetime (monotonic, cumulative)."""

    submitted: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    evaluated: int = 0
    failed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of submissions served from the store."""
        return self.cache_hits / self.submitted if self.submitted else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "deduplicated": self.deduplicated,
            "evaluated": self.evaluated,
            "failed": self.failed,
            "hit_rate": self.hit_rate,
        }


class ExplorationService:
    """Memoizing, batching front end over the sweep runner.

    Parameters
    ----------
    store:
        Result store (defaults to a fresh in-memory one, which still
        deduplicates within this service's lifetime).
    jobs:
        Worker processes for batch evaluation (see
        :class:`~repro.analysis.sweep.ParallelSweepRunner`).
    runner:
        Injectable runner (tests substitute a counting one).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        jobs: int | None = None,
        runner: ParallelSweepRunner | None = None,
    ):
        self.store = store if store is not None else ResultStore()
        self.runner = runner if runner is not None else ParallelSweepRunner(jobs=jobs)
        self.stats = ServiceStats()
        self._lock = threading.Lock()
        self._jobs: dict[str, _Job] = {}
        self._pending: list[str] = []
        self._background_flush: threading.Thread | None = None

    # ------------------------------------------------------------------
    # client API: submit / poll / result
    # ------------------------------------------------------------------

    def submit(self, cell: SweepCell) -> str:
        """Enqueue one cell; returns its content key (the job ticket).

        Cache hits and duplicates of in-flight jobs return immediately
        with the same ticket — the ticket is a pure function of the
        request, so clients may even compute it themselves.
        """
        key = cell_key(cell)
        with self._lock:
            self.stats.submitted += 1
            if key in self.store:
                self.stats.cache_hits += 1
                return key
            existing = self._jobs.get(key)
            if existing is not None and existing.status != FAILED:
                self.stats.deduplicated += 1
                return key
            # New key — or a failed job, which a fresh submission
            # retries (a transient worker failure must not poison the
            # key for the service's lifetime).
            self._jobs[key] = _Job(key, cell)
            self._pending.append(key)
        return key

    def poll(self, key: str) -> str:
        """Current state of a ticket (``done`` covers store hits)."""
        with self._lock:
            if key in self.store:
                return DONE
            job = self._jobs.get(key)
            if job is None:
                return UNKNOWN
            return job.status

    def kick(self) -> None:
        """Start a background flush if anything is pending (non-blocking).

        Submit-then-poll clients never call :meth:`result`, so without
        this a pending batch would wait forever; the RPC front end
        kicks on every poll that observes a pending job.  At most one
        background flush runs at a time — a second kick while it is
        alive is a no-op, and jobs submitted meanwhile are picked up
        by the next kick (or by any explicit flush).
        """
        with self._lock:
            if not self._pending:
                return
            if (
                self._background_flush is not None
                and self._background_flush.is_alive()
            ):
                return
            thread = threading.Thread(
                target=self.flush, name="mhla-service-flush", daemon=True
            )
            self._background_flush = thread
        thread.start()

    def result(self, key: str, timeout: float | None = None) -> MhlaResult:
        """The result for a ticket, evaluating the batch if needed.

        Raises :class:`ServiceError` for unknown tickets, failed
        evaluations, or a timeout waiting on another thread's batch.
        """
        with self._lock:
            job = self._jobs.get(key)
            needs_flush = job is not None and job.status == PENDING
        if job is None:
            result = self.store.get_result(key)
            if result is None:
                raise ServiceError(f"unknown job ticket {key!r}")
            return result
        if needs_flush:
            self.flush()
        if not job.event.wait(timeout):
            raise ServiceError(f"timed out waiting for job {key!r}")
        if job.status == FAILED:
            raise ServiceError(f"job {key!r} failed: {job.error}")
        result = self.store.get_result(key)
        if result is None:  # pragma: no cover - store/job invariant
            raise ServiceError(f"job {key!r} finished but left no result")
        return result

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Evaluate every pending job as one batch; returns batch size.

        Concurrent flushes are safe: each grabs only jobs still pending
        under the lock, so a job is handed to the runner exactly once.
        """
        with self._lock:
            batch = [
                self._jobs[key]
                for key in self._pending
                if self._jobs[key].status == PENDING
            ]
            self._pending.clear()
            for job in batch:
                job.status = RUNNING
        if not batch:
            return 0
        try:
            outcomes = self.runner.run(tuple(job.cell for job in batch))
            with self._lock:
                for job, outcome in zip(batch, outcomes):
                    if outcome.ok:
                        self.store.put_result(job.key, outcome.result)
                        job.status = DONE
                        self.stats.evaluated += 1
                    else:
                        job.status = FAILED
                        job.error = outcome.error
                        self.stats.evaluated += 1
                        self.stats.failed += 1
        finally:
            # Waiters must never hang: anything the batch left in
            # RUNNING (runner/store raised) fails loudly instead.
            with self._lock:
                for job in batch:
                    if job.status == RUNNING:
                        job.status = FAILED
                        job.error = "batch evaluation aborted"
                        self.stats.failed += 1
            for job in batch:
                job.event.set()
        return len(batch)

    def run(self, cells: Iterable[SweepCell]) -> tuple[SweepCellResult, ...]:
        """Drop-in for :meth:`ParallelSweepRunner.run`, cache-backed.

        Submits every cell, flushes once, and returns outcomes in cell
        order.  Results always come back through the store's lossless
        round-trip, so a cold run's output is byte-identical to the
        warm re-run that serves the same keys from disk.
        """
        cell_list = tuple(cells)
        keys = [self.submit(cell) for cell in cell_list]
        self.flush()
        outcomes = []
        for cell, key in zip(cell_list, keys):
            with self._lock:
                job = self._jobs.get(key)
            if job is not None:
                job.event.wait()
            result = self.store.get_result(key)
            if result is not None:
                outcomes.append(SweepCellResult(cell=cell, result=result))
            else:
                error = job.error if job is not None else "result missing"
                outcomes.append(
                    SweepCellResult(cell=cell, result=None, error=error)
                )
        return tuple(outcomes)

    def service_stats(self) -> dict:
        """Counters plus store occupancy, for the RPC ``stats`` method."""
        with self._lock:
            pending = len(self._pending)
        return {
            **self.stats.as_dict(),
            "pending": pending,
            "store_records": len(self.store),
        }
