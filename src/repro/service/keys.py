"""Canonical content keys for exploration requests.

The exploration service memoizes results by *what was asked for*, not
by who asked or when: a request is reduced to a canonical
JSON-serializable payload, hashed with SHA-256, and the digest is the
cache key.  Two requests that describe the same (program, platform,
search-config) triple — regardless of dict insertion order, tuple vs.
list spelling, or which process built them — produce the same key; any
semantic difference produces a different one.

Three request shapes are covered:

* :func:`cell_key` — a sweep grid cell (registry app name + platform
  recipe + objective + TE sort factor).  Display-only fields
  (``PlatformSpec.label``) and fields the platform builder ignores
  (``l2_bytes`` of a 2-layer platform) are excluded, so cosmetically
  different recipes for the same hardware hit the same cache line.
* :func:`case_key` — a full :class:`~repro.synth.spec.CaseSpec`
  (inline synthetic program or registry reference via
  :class:`~repro.synth.spec.AppRefSpec`).
* :func:`fuzz_verdict_key` — a case *plus* the differential-harness
  configuration, for memoizing clean fuzz verdicts.

Registry applications are identified through
:func:`repro.apps.app_cache_payload` (name + suite version for bundled
kernels, bare seed for generated ones), so bumping
``APP_SUITE_VERSION`` invalidates every cached result of the bundled
suite at once.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import asdict

from repro.analysis.sweep import PlatformSpec, SweepCell
from repro.apps import app_cache_payload
from repro.errors import ValidationError
from repro.memory.presets import PLATFORM_MODEL_VERSION
from repro.search.config import AssignerSpec
from repro.synth.spec import AppRefSpec, CaseSpec

KEY_FORMAT_VERSION = 2
"""Bumped when the key payload layout changes (invalidates all caches).

Version 2 folds the assigner recipe (:class:`AssignerSpec`) into the
``search`` section: a portfolio sweep and a greedy sweep describe
different computations and must never share a memoized result.
"""

_CONTENT_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

_SCALARS = (str, int, float, bool, type(None))


def is_content_key(value) -> bool:
    """True when *value* looks like a key this module produced.

    Every key is a lowercase SHA-256 hex digest; ``repro cache verify``
    uses this to flag records written by something other than the
    service (hand edits, foreign tools) as suspect.
    """
    return isinstance(value, str) and _CONTENT_KEY_RE.match(value) is not None


def canonical_payload(value):
    """Normalise nested data to a canonical plain form.

    Dicts are re-keyed in sorted order (string keys only), tuples
    become lists, scalars pass through.  Anything else — objects,
    sets, NaN/Inf floats — is rejected: a key must never depend on
    process-specific state.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValidationError("cache key payloads must not contain NaN/Inf")
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ValidationError(
                    f"cache key payload dict keys must be strings, got {key!r}"
                )
        return {key: canonical_payload(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item) for item in value]
    raise ValidationError(
        f"cache key payloads must be plain JSON data, got {type(value).__name__}"
    )


def canonical_json(payload) -> str:
    """The canonical serialized form a key is hashed over."""
    return json.dumps(
        canonical_payload(payload),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_key(payload) -> str:
    """SHA-256 hex digest of the canonical form of *payload*."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# request payload builders
# ----------------------------------------------------------------------


def platform_payload(spec: PlatformSpec) -> dict:
    """Canonical identity of a platform recipe.

    ``label`` is display-only and ``l2_bytes`` is ignored by the
    2-layer preset, so neither participates in the key.  The analytic
    latency/energy models behind the recipe are versioned by
    ``PLATFORM_MODEL_VERSION`` so model changes cold-start the cache.
    """
    payload = {
        "kind": spec.kind,
        "l1_bytes": spec.l1_bytes,
        "model_version": PLATFORM_MODEL_VERSION,
    }
    if spec.kind != "embedded_2layer":
        payload["l2_bytes"] = spec.l2_bytes
    return payload


def cell_payload(cell: SweepCell) -> dict:
    """Key payload of one sweep grid cell.

    The ``search`` section carries the TE sort factor and the assigner
    recipe.  :meth:`AssignerSpec.payload` keeps the greedy default
    budget-free, so greedy cells key identically whatever ``--budget``
    was on the command line.
    """
    return {
        "format": KEY_FORMAT_VERSION,
        "kind": "explore",
        "app": app_cache_payload(cell.app),
        "platform": platform_payload(cell.platform),
        "objective": cell.objective.value,
        "search": {
            "sort_factor": cell.sort_factor,
            "assigner": cell.assigner.payload(),
        },
    }


def cell_key(cell: SweepCell) -> str:
    """Content key of one sweep grid cell."""
    return content_key(cell_payload(cell))


def case_payload(
    case: CaseSpec,
    sort_factor: str = "time_per_size",
    assigner: AssignerSpec | None = None,
) -> dict:
    """Key payload of a full case spec (inline program or registry ref).

    The ``seed`` field is bookkeeping, not content — two specs that
    describe the same program/platform/objective from different seeds
    share a key — but a synthetic program's *name* embeds its seed and
    is part of the built program, so generated cases still key apart.
    """
    if isinstance(case.program, AppRefSpec):
        program_payload = app_cache_payload(case.program.name)
    else:
        program_payload = asdict(case.program)
    return {
        "format": KEY_FORMAT_VERSION,
        "kind": "explore",
        "app": program_payload,
        # HierarchySpec capacities are explicit, but latencies/energies
        # are still derived through the versioned analytic models.
        "platform": {
            **asdict(case.platform),
            "model_version": PLATFORM_MODEL_VERSION,
        },
        "objective": case.objective,
        "search": {
            "sort_factor": sort_factor,
            "assigner": (assigner or AssignerSpec()).payload(),
        },
    }


def case_key(
    case: CaseSpec,
    sort_factor: str = "time_per_size",
    assigner: AssignerSpec | None = None,
) -> str:
    """Content key of a full case spec."""
    return content_key(
        case_payload(case, sort_factor=sort_factor, assigner=assigner)
    )


def fuzz_verdict_payload(case: CaseSpec, harness_config: dict) -> dict:
    """Key payload of one differential-verification verdict."""
    return {
        "format": KEY_FORMAT_VERSION,
        "kind": "fuzz_verdict",
        "case": case_payload(case),
        "harness": harness_config,
    }


def fuzz_verdict_key(case: CaseSpec, harness_config: dict) -> str:
    """Content key of one differential-verification verdict."""
    return content_key(fuzz_verdict_payload(case, harness_config))
