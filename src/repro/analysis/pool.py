"""Process-wide persistent worker pool for sweep-style fan-out.

``multiprocessing.Pool`` costs a full interpreter spawn per worker —
tens of milliseconds that the old spawn-per-sweep pattern paid on
*every* ``ParallelSweepRunner.run()``.  A long-lived service (``repro
serve``) or a fuzz loop runs hundreds of sweeps per process, so the
fixed cost dominated and ``--jobs`` lost to the serial path on all but
the largest grids.

:class:`PersistentPool` amortises that cost process-wide:

* **one pool per process**, created on first parallel dispatch and
  reused by every later sweep (and by the portfolio's parallel racing)
  until interpreter exit — :func:`get_pool` is the singleton accessor;
* the **spawn** start method, explicitly: the service runs a
  background flush thread, and forking a multi-threaded parent is
  undefined behaviour; spawn also behaves identically across
  platforms, keeping parallel results byte-identical to serial ones
  everywhere;
* **contiguous batch dispatch** instead of ``chunksize=1`` — one IPC
  round-trip carries a slice of adjacent items, so workers amortise
  pickling overhead *and* see cache-friendly runs of cells that share
  an (app, platform) analysis context;
* a **per-batch fallback**: when the pool dies mid-dispatch (a worker
  segfault, interpreter teardown), the affected batches run in-parent
  through the same function — callers still get a complete,
  order-correct result, and the next dispatch restarts the pool.

Determinism: ``map_batched`` always returns results in submission
order, whatever order batches complete in, so parallel output is
byte-identical to the serial loop over the same items.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.obs.metrics import MetricsRegistry

__all__ = ["BATCHES_PER_WORKER", "PersistentPool", "PoolStats", "get_pool"]

BATCHES_PER_WORKER = 2
"""Target batches per worker: a little slack so an unlucky slow batch
does not serialise the tail, but batches stay long — measured on the
9-cell bench grid, halving from 4 turned the warm pool from 14% slower
than serial into 6% faster, because longer contiguous runs are what
feed the workers' per-(app, platform) context cache."""


@dataclass(frozen=True)
class PoolStats:
    """Lifetime counters of one :class:`PersistentPool` (observability).

    ``cold_starts`` counts pool (re)creations — a healthy long-lived
    process shows exactly 1 however many sweeps it ran; ``fallbacks``
    counts batches that had to run in-parent after a pool failure.
    """

    cold_starts: int = 0
    dispatches: int = 0
    batches: int = 0
    tasks: int = 0
    fallbacks: int = 0


def _run_batch(func, items):
    """Worker-side batch body: one IPC round-trip, many items.

    *func* must be a picklable top-level function that never raises
    (the sweep workers wrap exceptions into their result tuples) —
    an escaping exception here would poison the whole dispatch.
    """
    return [func(item) for item in items]


class PersistentPool:
    """A lazily created, resizable-up, process-lifetime worker pool.

    Thread-safe: the service's flush thread and the main thread may
    dispatch concurrently (``multiprocessing.Pool`` supports
    multi-threaded submission; creation and teardown are locked here).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pool = None
        self._workers = 0
        # lifetime counters as typed instruments (one registry per
        # pool; the process singleton's is what `metrics` exposes)
        self.metrics = MetricsRegistry()
        self._cold_starts = self.metrics.counter(
            "repro_pool_cold_starts_total",
            "Worker-pool (re)creations (healthy long-lived process: 1).")
        self._dispatches = self.metrics.counter(
            "repro_pool_dispatches_total", "map_batched calls fanned out.")
        self._batches = self.metrics.counter(
            "repro_pool_batches_total", "Contiguous batches dispatched.")
        self._tasks = self.metrics.counter(
            "repro_pool_tasks_total", "Items evaluated through the pool.")
        self._fallbacks = self.metrics.counter(
            "repro_pool_fallbacks_total",
            "Batches replayed in-parent after a pool failure.")
        self.metrics.gauge(
            "repro_pool_workers", "Current worker-process count."
        ).set_fn(lambda: self._workers)

    # ------------------------------------------------------------------

    def _ensure(self, workers: int):
        """The live pool with at least *workers* processes (locked)."""
        with self._lock:
            if self._pool is None or self._workers < workers:
                if self._pool is not None:
                    self._pool.terminate()
                # spawn, not fork: the parent may run threads (the
                # service flush loop), and spawn is identical on every
                # platform, so parallel == serial holds everywhere.
                context = multiprocessing.get_context("spawn")
                self._pool = context.Pool(processes=workers)
                self._workers = workers
                self._cold_starts.inc()
            return self._pool

    def _discard(self, pool):
        """Forget a broken pool so the next dispatch restarts one."""
        with self._lock:
            if self._pool is pool:
                self._pool = None
                self._workers = 0
        try:
            pool.terminate()
        except Exception:  # pragma: no cover - teardown best-effort
            pass

    @staticmethod
    def _slice(items, jobs: int):
        """Contiguous batches: ~:data:`BATCHES_PER_WORKER` per worker.

        Contiguity is deliberate — grid cells arrive app-major, so a
        batch is a run of cells sharing an application (and often a
        platform), which the worker-side context cache turns into one
        build amortised over the run.
        """
        count = min(len(items), jobs * BATCHES_PER_WORKER)
        base, extra = divmod(len(items), count)
        batches = []
        start = 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            batches.append(items[start : start + size])
            start += size
        return batches

    def map_batched(self, func, items, jobs: int) -> list:
        """``[func(item) for item in items]``, fanned over the pool.

        Results come back in submission order regardless of completion
        order.  *func* must be picklable and non-raising (wrap errors
        into return values); a pool failure falls back to running the
        affected batches in-parent, so the call itself never loses
        items.
        """
        items = list(items)
        if not items:
            return []
        workers = min(jobs, len(items))
        if workers <= 1:
            return [func(item) for item in items]
        batches = self._slice(items, workers)
        pool = self._ensure(workers)
        handles = []
        dispatch_error: Exception | None = None
        try:
            for batch in batches:
                handles.append(pool.apply_async(_run_batch, (func, batch)))
        except Exception as error:  # pool already torn down: run here
            self._discard(pool)
            handles = None
            dispatch_error = error
        results: list = []
        fallbacks = 0
        if handles is None:
            for batch in batches:
                fallbacks += 1
                results.extend(self._run_fallback(func, batch, dispatch_error))
        else:
            for batch, handle in zip(batches, handles):
                try:
                    results.extend(handle.get())
                except Exception as worker_error:
                    # The batch died with its worker (or the pool did);
                    # in-parent replay keeps the result complete and
                    # ordered, and drops the pool for a fresh start.
                    self._discard(pool)
                    fallbacks += 1
                    results.extend(
                        self._run_fallback(func, batch, worker_error)
                    )
        with self._lock:
            self._dispatches.inc()
            self._batches.inc(len(batches))
            self._tasks.inc(len(items))
            self._fallbacks.inc(fallbacks)
        return results

    @staticmethod
    def _run_fallback(func, batch, pool_error: Exception | None) -> list:
        """In-parent replay of one batch whose pool dispatch failed.

        A fallback that *also* fails must not bury the pool-side error
        that forced it — that error is usually the real diagnosis (a
        worker OOM-kill, an unpicklable result) and the in-parent one
        just its shadow.  The raised error names both and chains the
        original, so ``SweepCellResult.error`` reports the real cause.
        """
        results = []
        for item in batch:
            try:
                results.append(func(item))
            except Exception as fallback_error:
                raise EvaluationError(
                    "worker pool dispatch failed "
                    f"({type(pool_error).__name__}: {pool_error}); "
                    "in-parent fallback then failed: "
                    f"{type(fallback_error).__name__}: {fallback_error}"
                ) from pool_error
        return results

    # ------------------------------------------------------------------

    def stats(self) -> PoolStats:
        """Snapshot of the lifetime counters."""
        with self._lock:
            return PoolStats(
                cold_starts=self._cold_starts.value,
                dispatches=self._dispatches.value,
                batches=self._batches.value,
                tasks=self._tasks.value,
                fallbacks=self._fallbacks.value,
            )

    @property
    def workers(self) -> int:
        """Current worker-process count (0 before the first dispatch)."""
        with self._lock:
            return self._workers

    def shutdown(self):
        """Terminate the worker processes (idempotent).

        The singleton registers this with :mod:`atexit`; tests call it
        directly to pin cold-start counting.
        """
        with self._lock:
            pool, self._pool, self._workers = self._pool, None, 0
        if pool is not None:
            pool.terminate()
            pool.join()


_singleton: PersistentPool | None = None
_singleton_lock = threading.Lock()


def get_pool() -> PersistentPool:
    """The process-wide pool, created on first use."""
    global _singleton
    with _singleton_lock:
        if _singleton is None:
            _singleton = PersistentPool()
            atexit.register(_singleton.shutdown)
        return _singleton
