"""Parallel scenario sweeps over the app x platform x objective grid.

The exploration tool is routinely run over *many* scenarios at once —
every bundled application on several platform configurations under
each objective.  The cells are embarrassingly parallel (each is one
independent :class:`~repro.core.mhla.Mhla` exploration), so
:class:`ParallelSweepRunner` fans them across the process-wide
persistent worker pool (:mod:`repro.analysis.pool`) in contiguous
batches — the pool is created once per process and reused by every
later sweep, so a long-lived service or fuzz loop pays the worker
spawn cost exactly once instead of per sweep.

Workers keep a small keyed cache of built ``(program, platform,
AnalysisContext)`` triples: grid cells arrive app-major, so a
contiguous batch is a run of cells sharing an (app, platform) pair and
the expensive analysis precomputation happens once per run instead of
once per cell.  The context is *pure* precomputation — each cell still
gets a fresh :class:`~repro.core.incremental.IncrementalEvaluator`, so
cached-context results (including the trace's cache-hit/miss counters)
are byte-identical to cold ones.

Determinism: cells are picklable *recipes* (app name + platform
parameters + objective), workers rebuild the program/platform from the
recipe, and results come back in exactly the submitted cell order,
so a parallel run produces output identical to the serial path.
``jobs <= 1`` short-circuits to an in-process loop with no pool at
all — that loop is the stateless reference the parallel path must
match byte for byte.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.pool import get_pool
from repro.obs import profile as obs_profile

from repro.analysis.report import format_table
from repro.apps import all_app_names, build_app
from repro.core.assignment import Objective
from repro.core.mhla import Mhla, MhlaResult
from repro.errors import EvaluationError, ValidationError
from repro.memory.presets import Platform, embedded_2layer, embedded_3layer
from repro.search.config import AssignerSpec
from repro.units import fmt_bytes, fmt_cycles, fmt_energy_nj, fmt_percent, kib

__all__ = [
    "DEFAULT_PLATFORM_SPECS",
    "ParallelSweepRunner",
    "PlatformSpec",
    "SweepCell",
    "SweepCellResult",
    "cell_strategy",
    "full_grid",
    "grid_table",
    "synthetic_grid",
]


@dataclass(frozen=True)
class PlatformSpec:
    """A picklable platform recipe (workers rebuild the real platform).

    ``l2_bytes`` is ignored by the 2-layer kind, whose single
    scratchpad takes ``l1_bytes``.
    """

    kind: str = "embedded_3layer"
    l1_bytes: int = kib(8)
    l2_bytes: int = kib(64)
    label: str = ""

    def build(self) -> Platform:
        """Materialise the platform this spec describes."""
        if self.kind == "embedded_3layer":
            return embedded_3layer(l1_bytes=self.l1_bytes, l2_bytes=self.l2_bytes)
        if self.kind == "embedded_2layer":
            return embedded_2layer(onchip_bytes=self.l1_bytes)
        raise ValidationError(f"unknown platform kind {self.kind!r}")

    @property
    def name(self) -> str:
        """Display name for tables."""
        if self.label:
            return self.label
        if self.kind == "embedded_2layer":
            return f"2layer/{fmt_bytes(self.l1_bytes)}"
        return f"3layer/{fmt_bytes(self.l1_bytes)}+{fmt_bytes(self.l2_bytes)}"


DEFAULT_PLATFORM_SPECS: tuple[PlatformSpec, ...] = (
    PlatformSpec(label="default"),
    PlatformSpec(l1_bytes=kib(2), l2_bytes=kib(16), label="small"),
)
"""The grid's default platform pair: the paper's platform + a cramped one."""


@dataclass(frozen=True)
class SweepCell:
    """One grid point: an app on a platform under an objective.

    ``assigner`` is the step-1 search-engine recipe; the default keeps
    the paper's greedy engine.  It is part of the cell's identity —
    the service's cache keys include it, so a portfolio sweep never
    shares memoized results with a greedy one.
    """

    app: str
    platform: PlatformSpec
    objective: Objective
    sort_factor: str = "time_per_size"
    assigner: AssignerSpec = AssignerSpec()


@dataclass(frozen=True)
class SweepCellResult:
    """A cell together with its full exploration result — or its failure.

    Exactly one of ``result`` and ``error`` is set.  A failed cell
    carries the worker's exception as ``"ExcType: message"`` text (the
    exception object itself may not pickle across the pool boundary);
    the rest of the grid still evaluates.
    """

    cell: SweepCell
    result: MhlaResult | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the cell evaluated successfully."""
        return self.error is None

    def require(self) -> MhlaResult:
        """The result, or :class:`EvaluationError` for a failed cell."""
        if self.result is None:
            raise EvaluationError(
                f"cell {self.cell.app}/{self.cell.platform.name}/"
                f"{self.cell.objective.value} failed: {self.error}"
            )
        return self.result


def evaluate_cell(cell: SweepCell) -> MhlaResult:
    """Run the full MHLA(+TE) flow for one cell (the pool worker)."""
    program = build_app(cell.app)
    platform = cell.platform.build()
    return Mhla(
        program,
        platform,
        objective=cell.objective,
        sort_factor=cell.sort_factor,
        assigner=cell.assigner,
    ).explore()


def _maybe_profile_cell(cell: SweepCell):
    """``cProfile`` context for one cell when ``--profile`` is active.

    Keyed by the cell's content key, so the ``.pstats`` artifact of a
    slow cell is findable from the same id the cache and trace events
    use.  A plain no-op context (no key computation, no profiler) when
    profiling is off — both evaluation paths run through this, and the
    off path must stay free.  Profiling runs in the worker process, so
    the env-propagated directory reaches spawn-pool workers too.
    """
    if obs_profile.profile_dir() is None:
        return nullcontext()
    from repro.service.keys import cell_key  # circular at import time

    return obs_profile.maybe_profile(cell_key(cell))


def _evaluate_cell_guarded(
    cell: SweepCell,
) -> tuple[MhlaResult | None, str | None]:
    """Serial-path cell wrapper: never raises, returns (result, error).

    Exceptions must not escape: one bad cell would abort the sweep and
    throw away every other cell's work (and, before this wrapper
    existed, did so with an exception whose cell identity was lost).
    This stateless build-everything-per-cell loop is the reference the
    warm pooled worker must match byte for byte.
    """
    try:
        with _maybe_profile_cell(cell):
            return evaluate_cell(cell), None
    except Exception as error:  # noqa: BLE001 — worker boundary
        return None, f"{type(error).__name__}: {error}"


_CTX_CACHE: dict[tuple, tuple] = {}
_CTX_CACHE_LIMIT = 16
"""Worker-resident (app, platform-recipe) -> (program, platform, ctx)
cache.  Bounded LRU: a synthetic sweep can reference thousands of
generated apps and must not grow worker memory without bound."""


def _cached_context(cell: SweepCell):
    """The built (program, platform, ctx) triple for a cell's recipe.

    Lives in the worker process across batches (module globals survive
    between pool tasks), so consecutive cells of one app pay for one
    analysis build.  Only pure precomputation is cached — never an
    evaluator, whose cache counters are part of the result.
    """
    from repro.core.context import AnalysisContext

    key = (
        cell.app,
        cell.platform.kind,
        cell.platform.l1_bytes,
        cell.platform.l2_bytes,
    )
    cached = _CTX_CACHE.pop(key, None)
    if cached is None:
        program = build_app(cell.app)
        platform = cell.platform.build()
        cached = (program, platform, AnalysisContext(program, platform))
        while len(_CTX_CACHE) >= _CTX_CACHE_LIMIT:
            _CTX_CACHE.pop(next(iter(_CTX_CACHE)))
    _CTX_CACHE[key] = cached  # (re)insert at LRU tail
    return cached


def _evaluate_cell_warm(
    cell: SweepCell,
) -> tuple[MhlaResult | None, str | None]:
    """Pooled worker body: context-cached, never raises.

    Byte-identical results to :func:`_evaluate_cell_guarded` — the
    cached context is pure precomputation and the evaluator is rebuilt
    per cell inside :meth:`~repro.core.mhla.Mhla.explore`.
    """
    try:
        with _maybe_profile_cell(cell):
            program, platform, ctx = _cached_context(cell)
            result = Mhla(
                program,
                platform,
                objective=cell.objective,
                sort_factor=cell.sort_factor,
                assigner=cell.assigner,
                ctx=ctx,
            ).explore()
            return result, None
    except Exception as error:  # noqa: BLE001 — worker boundary
        return None, f"{type(error).__name__}: {error}"


def full_grid(
    apps: Iterable[str] | None = None,
    platforms: Sequence[PlatformSpec] = DEFAULT_PLATFORM_SPECS,
    objectives: Sequence[Objective] = tuple(Objective),
    assigner: AssignerSpec = AssignerSpec(),
) -> tuple[SweepCell, ...]:
    """The app x platform x objective grid in deterministic order.

    App-major, then platform, then objective — the order the serial
    path iterates and the order results are returned in.  One
    *assigner* recipe applies to every cell of the grid.
    """
    app_names = tuple(apps) if apps is not None else all_app_names()
    return tuple(
        SweepCell(
            app=app, platform=platform, objective=objective, assigner=assigner
        )
        for app in app_names
        for platform in platforms
        for objective in objectives
    )


def synthetic_grid(
    count: int,
    seed: int = 0,
    platforms: Sequence[PlatformSpec] = DEFAULT_PLATFORM_SPECS,
    objectives: Sequence[Objective] = (Objective.EDP,),
    assigner: AssignerSpec = AssignerSpec(),
) -> tuple[SweepCell, ...]:
    """A sweep grid over *count* generated applications.

    Cells reference apps by their ``synth/<seed>`` registry names, so
    pool workers rebuild each program deterministically from the cell
    recipe — no generator state crosses process boundaries.  Objectives
    default to EDP only (generated suites are usually large; the full
    objective cross-product is available by passing ``objectives``).
    """
    from repro.synth import synthetic_app_names

    return full_grid(
        apps=synthetic_app_names(count, seed=seed),
        platforms=platforms,
        objectives=objectives,
        assigner=assigner,
    )


class ParallelSweepRunner:
    """Evaluate sweep cells across the persistent worker pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``None``, 0 or 1 run serially in
        process; larger values cap at the number of cells and dispatch
        contiguous batches through the process-wide
        :class:`~repro.analysis.pool.PersistentPool` (created on the
        first parallel sweep, reused by every later one).  Results are
        always returned in cell order, so the output is identical
        regardless of *jobs*.
    """

    def __init__(self, jobs: int | None = None):
        self.jobs = jobs

    def run(self, cells: Iterable[SweepCell]) -> tuple[SweepCellResult, ...]:
        """Evaluate all cells; deterministic result ordering.

        Per-cell failures are surfaced as :class:`SweepCellResult`
        entries with ``error`` set instead of aborting the grid — the
        caller decides whether a partial sweep is acceptable
        (:meth:`SweepCellResult.require` re-raises).
        """
        cell_list = tuple(cells)
        jobs = self.jobs or 1
        if cell_list:
            jobs = min(jobs, len(cell_list))
        if jobs <= 1:
            outcomes = [_evaluate_cell_guarded(cell) for cell in cell_list]
        else:
            outcomes = get_pool().map_batched(
                _evaluate_cell_warm, cell_list, jobs
            )
        return tuple(
            SweepCellResult(cell=cell, result=result, error=error)
            for cell, (result, error) in zip(cell_list, outcomes)
        )


def cell_strategy(outcome: SweepCellResult) -> str:
    """Which search strategy produced a cell's assignment.

    The winning engine is attributed on the result's search trace
    (e.g. ``portfolio:tabu``); a failed cell (or a result cached
    before attribution existed) falls back to the requested assigner
    name.
    """
    if outcome.result is not None:
        trace = outcome.result.scenario("mhla").trace
        if trace is not None and trace.strategy:
            return trace.strategy
    return outcome.cell.assigner.name


def grid_table(outcomes: Sequence[SweepCellResult]) -> str:
    """Fixed-width table of a grid sweep, one row per cell.

    Failed cells render with dashed metric columns; their error texts
    are listed after the table so a partial sweep never hides the
    failures.  The ``assigner`` column attributes the strategy that
    won each cell (``portfolio:<winner>`` for portfolio runs).
    """
    headers = [
        "app",
        "platform",
        "objective",
        "assigner",
        "oob cyc",
        "te cyc",
        "total gain",
        "oob nJ",
        "mhla nJ",
        "E gain",
    ]
    rows = []
    failed: list[SweepCellResult] = []
    for outcome in outcomes:
        result = outcome.result
        if result is None:
            failed.append(outcome)
            rows.append(
                [
                    outcome.cell.app,
                    outcome.cell.platform.name,
                    outcome.cell.objective.value,
                    outcome.cell.assigner.name,
                ]
                + ["-"] * 6
            )
            continue
        rows.append(
            [
                outcome.cell.app,
                outcome.cell.platform.name,
                outcome.cell.objective.value,
                cell_strategy(outcome),
                fmt_cycles(result.scenario("oob").cycles),
                fmt_cycles(result.scenario("mhla_te").cycles),
                fmt_percent(result.total_speedup_fraction),
                fmt_energy_nj(result.scenario("oob").energy_nj),
                fmt_energy_nj(result.scenario("mhla").energy_nj),
                fmt_percent(result.energy_reduction_fraction),
            ]
        )
    table = format_table(headers, rows)
    if failed:
        lines = [table, "", f"{len(failed)} cell(s) failed:"]
        for outcome in failed:
            lines.append(
                f"  {outcome.cell.app}/{outcome.cell.platform.name}/"
                f"{outcome.cell.objective.value}: {outcome.error}"
            )
        return "\n".join(lines)
    return table
