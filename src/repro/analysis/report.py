"""Fixed-width result tables.

The benchmark harness prints "the same rows the paper reports": one row
per application with the four scenario costs and the derived improvement
percentages.  Everything renders with plain ``str.format`` so output is
stable across environments (no external tabulation dependency).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.mhla import MhlaResult
from repro.core.tradeoff import TradeoffPoint
from repro.units import fmt_bytes, fmt_cycles, fmt_energy_nj, fmt_percent


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], min_width: int = 6
) -> str:
    """Render a left-padded fixed-width table as a single string."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("all rows must have one cell per header")
    widths = [
        max(min_width, len(header), *(len(row[col]) for row in rows))
        if rows
        else max(min_width, len(header))
        for col, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.rjust(width) for header, width in zip(headers, widths))
    ]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def scenario_table(results: Sequence[MhlaResult]) -> str:
    """Figure 2 + Figure 3 style table: one row per application."""
    headers = [
        "app",
        "oob cyc",
        "mhla cyc",
        "te cyc",
        "ideal cyc",
        "mhla gain",
        "te gain",
        "oob nJ",
        "mhla nJ",
        "E gain",
    ]
    rows = []
    for result in results:
        rows.append(
            [
                result.app_name,
                fmt_cycles(result.scenario("oob").cycles),
                fmt_cycles(result.scenario("mhla").cycles),
                fmt_cycles(result.scenario("mhla_te").cycles),
                fmt_cycles(result.scenario("ideal").cycles),
                fmt_percent(result.mhla_speedup_fraction),
                fmt_percent(result.te_speedup_fraction),
                fmt_energy_nj(result.scenario("oob").energy_nj),
                fmt_energy_nj(result.scenario("mhla").energy_nj),
                fmt_percent(result.energy_reduction_fraction),
            ]
        )
    return format_table(headers, rows)


def search_stats_table(results: Sequence[MhlaResult]) -> str:
    """Search-engine counters: one row per application.

    Surfaces the :class:`~repro.core.assignment.SearchStats` block the
    greedy engine records on its trace (moves scored, accepted moves,
    cleanup drops, evaluator cache hit rate, wall time).
    """
    headers = [
        "app",
        "assigner",
        "moves",
        "rounds",
        "applied",
        "drops",
        "cache hit",
        "time ms",
    ]
    rows = []
    for result in results:
        trace = result.scenario("mhla").trace
        stats = trace.stats if trace is not None else None
        if stats is None:
            rows.append([result.app_name] + ["-"] * 7)
            continue
        lookups = stats.cache_hits + stats.cache_misses
        hit_rate = stats.cache_hits / lookups if lookups else 0.0
        rows.append(
            [
                result.app_name,
                trace.strategy or "-",
                str(stats.moves_evaluated),
                str(stats.rounds),
                str(stats.moves_applied),
                str(stats.cleanup_drops),
                fmt_percent(hit_rate),
                f"{stats.wall_time_s * 1e3:.1f}",
            ]
        )
    return format_table(headers, rows)


def sweep_table(points: Sequence[TradeoffPoint]) -> str:
    """TAB-TRADEOFF table: one row per explored L1 size."""
    headers = ["L1 size", "mhla cyc", "te cyc", "energy", "copies", "EDP"]
    rows = [
        [
            fmt_bytes(point.l1_bytes),
            fmt_cycles(point.cycles),
            fmt_cycles(point.te_cycles),
            fmt_energy_nj(point.energy_nj),
            str(point.copies),
            f"{point.edp:.3e}",
        ]
        for point in points
    ]
    return format_table(headers, rows)
