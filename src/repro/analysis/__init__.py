"""Result analysis and reporting.

* :mod:`~repro.analysis.pareto` — Pareto-front filtering for the
  trade-off exploration (the paper's "all the optimal trade-off
  points").
* :mod:`~repro.analysis.report` — fixed-width tables for scenario and
  sweep results (what the CLI and benchmark harness print).
* :mod:`~repro.analysis.charts` — ASCII bar charts approximating the
  paper's Figures 2 and 3 in a terminal.
* :mod:`~repro.analysis.records` — experiment records used to generate
  EXPERIMENTS.md entries programmatically.
* :mod:`~repro.analysis.sweep` — the parallel scenario-sweep runner
  fanning the app x platform x objective grid across worker processes.
"""

from repro.analysis.pareto import ParetoPoint, pareto_front
from repro.analysis.report import (
    format_table,
    scenario_table,
    search_stats_table,
    sweep_table,
)
from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.records import ExperimentRecord, render_records
from repro.analysis.sweep import (
    ParallelSweepRunner,
    PlatformSpec,
    SweepCell,
    SweepCellResult,
    full_grid,
    grid_table,
)

__all__ = [
    "ExperimentRecord",
    "ParallelSweepRunner",
    "ParetoPoint",
    "PlatformSpec",
    "SweepCell",
    "SweepCellResult",
    "bar_chart",
    "format_table",
    "full_grid",
    "grid_table",
    "grouped_bar_chart",
    "pareto_front",
    "render_records",
    "scenario_table",
    "search_stats_table",
    "sweep_table",
]
