"""Result analysis and reporting.

* :mod:`~repro.analysis.pareto` — Pareto-front filtering for the
  trade-off exploration (the paper's "all the optimal trade-off
  points").
* :mod:`~repro.analysis.report` — fixed-width tables for scenario and
  sweep results (what the CLI and benchmark harness print).
* :mod:`~repro.analysis.charts` — ASCII bar charts approximating the
  paper's Figures 2 and 3 in a terminal.
* :mod:`~repro.analysis.records` — experiment records used to generate
  EXPERIMENTS.md entries programmatically.
"""

from repro.analysis.pareto import ParetoPoint, pareto_front
from repro.analysis.report import (
    format_table,
    scenario_table,
    sweep_table,
)
from repro.analysis.charts import bar_chart, grouped_bar_chart
from repro.analysis.records import ExperimentRecord, render_records

__all__ = [
    "ExperimentRecord",
    "ParetoPoint",
    "bar_chart",
    "format_table",
    "grouped_bar_chart",
    "pareto_front",
    "render_records",
    "scenario_table",
    "sweep_table",
]
