"""ASCII bar charts.

Terminal renderings of the paper's two figures: grouped bars per
application, normalised to the out-of-the-box baseline.  Useful in the
CLI and examples; benchmarks print the numeric tables instead.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
) -> str:
    """One horizontal bar per entry, scaled to the maximum value."""
    if not values:
        return "(empty chart)"
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = 0 if peak == 0 else int(round(width * value / peak))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:,.0f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    series_order: Sequence[str],
    width: int = 40,
) -> str:
    """Per-group normalised bars, one line per series.

    Each group (application) is normalised to its *first* series (the
    baseline), so the chart reads like the paper's Figures 2/3: baseline
    bars at 100%, optimised bars proportionally shorter.
    """
    lines = []
    for group_name, series in groups.items():
        if not series:
            continue
        baseline_name = series_order[0]
        baseline = series.get(baseline_name, 0.0)
        lines.append(f"{group_name}:")
        for name in series_order:
            if name not in series:
                continue
            value = series[name]
            fraction = 1.0 if baseline == 0 else value / baseline
            filled = int(round(width * min(1.0, fraction)))
            lines.append(
                f"  {name.ljust(8)} |{('#' * filled).ljust(width)}| "
                f"{fraction * 100:5.1f}%"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
