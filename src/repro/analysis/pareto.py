"""Pareto-front utilities.

MHLA is a trade-off exploration tool: "able to find all the optimal
trade-off points, given some architecture specific constraints and
models" (paper, section 2).  A configuration is *Pareto-optimal* when no
other configuration is at least as good in every objective and strictly
better in one.  All objectives here are minimised (cycles, energy,
on-chip bytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ParetoPoint:
    """A generic point with named objective values (all minimised)."""

    label: str
    objectives: tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector *a* Pareto-dominates *b*.

    *a* dominates *b* iff a <= b component-wise with at least one strict
    inequality.  Vectors must have equal length.
    """
    if len(a) != len(b):
        raise ValueError(f"objective ranks differ: {len(a)} vs {len(b)}")
    no_worse = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return no_worse and strictly_better


def pareto_front(
    items: Iterable[T], key: Callable[[T], Sequence[float]]
) -> tuple[T, ...]:
    """Return the non-dominated subset of *items*, input order preserved.

    Duplicate objective vectors are all kept (they tie; none dominates
    the other), which matters when two layer sizes reach the identical
    cost — both are valid design points.
    """
    pool = list(items)
    vectors = [tuple(key(item)) for item in pool]
    front: list[T] = []
    for index, vector in enumerate(vectors):
        dominated = any(
            dominates(other, vector)
            for position, other in enumerate(vectors)
            if position != index
        )
        if not dominated:
            front.append(pool[index])
    return tuple(front)
