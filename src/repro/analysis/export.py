"""Machine-readable export of exploration results.

Downstream users (plotting scripts, regression dashboards) need the
numbers, not the ASCII tables.  This module serialises
:class:`~repro.core.mhla.MhlaResult` and trade-off sweeps to plain
dictionaries, JSON and CSV.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.core.mhla import MhlaResult
from repro.core.scenarios import SCENARIO_ORDER
from repro.core.tradeoff import TradeoffPoint


def result_to_dict(result: MhlaResult) -> dict:
    """Flatten one exploration result to plain data."""
    scenarios = {}
    for name in SCENARIO_ORDER:
        if name not in result.scenarios:
            continue
        scenario = result.scenarios[name]
        report = scenario.report
        scenarios[name] = {
            "cycles": report.cycles,
            "energy_nj": report.energy_nj,
            "compute_cycles": report.compute_cycles,
            "cpu_access_cycles": report.cpu_access_cycles,
            "stall_cycles": report.stall_cycles,
            "transfer_words": report.transfer_words,
            "fill_events": report.fill_events,
            "copies": scenario.assignment.copy_count(),
        }
    return {
        "app": result.app_name,
        "platform": result.platform_name,
        "scenarios": scenarios,
        "mhla_speedup": result.mhla_speedup_fraction,
        "te_speedup": result.te_speedup_fraction,
        "total_speedup": result.total_speedup_fraction,
        "energy_reduction": result.energy_reduction_fraction,
    }


def results_to_json(results: Sequence[MhlaResult], indent: int = 2) -> str:
    """Serialise several results to a JSON document."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Sequence[MhlaResult]) -> str:
    """One CSV row per (app, scenario) pair."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["app", "platform", "scenario", "cycles", "energy_nj", "stall_cycles",
         "copies"]
    )
    for result in results:
        flat = result_to_dict(result)
        for scenario_name, data in flat["scenarios"].items():
            writer.writerow(
                [
                    flat["app"],
                    flat["platform"],
                    scenario_name,
                    f"{data['cycles']:.0f}",
                    f"{data['energy_nj']:.3f}",
                    f"{data['stall_cycles']:.0f}",
                    data["copies"],
                ]
            )
    return buffer.getvalue()


def sweep_to_csv(points: Sequence[TradeoffPoint]) -> str:
    """One CSV row per explored layer size."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["l1_bytes", "mhla_cycles", "te_cycles", "energy_nj", "copies", "edp"]
    )
    for point in points:
        writer.writerow(
            [
                point.l1_bytes,
                f"{point.cycles:.0f}",
                f"{point.te_cycles:.0f}",
                f"{point.energy_nj:.3f}",
                point.copies,
                f"{point.edp:.6e}",
            ]
        )
    return buffer.getvalue()
