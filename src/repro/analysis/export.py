"""Machine-readable export of exploration results.

Downstream users (plotting scripts, regression dashboards) need the
numbers, not the ASCII tables.  This module serialises
:class:`~repro.core.mhla.MhlaResult` and trade-off sweeps to plain
dictionaries, JSON and CSV.

Two fidelity levels exist:

* :func:`result_to_dict` — the lossy *summary* flattening (headline
  numbers only) used by dashboards and the JSON-RPC service responses.
* :func:`result_to_state` / :func:`result_from_state` — the lossless
  *state* round-trip used by the content-addressed result store
  (:mod:`repro.service.store`).  Every float is preserved exactly
  (JSON uses shortest-round-trip ``repr``), dict iteration orders are
  kept, and the rebuilt :class:`MhlaResult` renders byte-identical
  report tables to the original.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.core.assignment import SearchStats, SearchTrace
from repro.core.context import Assignment
from repro.core.costs import CostReport, LayerTraffic
from repro.core.mhla import MhlaResult
from repro.core.scenarios import SCENARIO_ORDER, ScenarioResult
from repro.core.te import TeDecision, TeSchedule
from repro.core.tradeoff import TradeoffPoint
from repro.errors import ValidationError

RESULT_STATE_VERSION = 1
"""Bumped when the lossless state layout changes incompatibly."""


def result_to_dict(result: MhlaResult) -> dict:
    """Flatten one exploration result to plain data."""
    scenarios = {}
    for name in SCENARIO_ORDER:
        if name not in result.scenarios:
            continue
        scenario = result.scenarios[name]
        report = scenario.report
        scenarios[name] = {
            "cycles": report.cycles,
            "energy_nj": report.energy_nj,
            "compute_cycles": report.compute_cycles,
            "cpu_access_cycles": report.cpu_access_cycles,
            "stall_cycles": report.stall_cycles,
            "transfer_words": report.transfer_words,
            "fill_events": report.fill_events,
            "copies": scenario.assignment.copy_count(),
        }
    return {
        "app": result.app_name,
        "platform": result.platform_name,
        "scenarios": scenarios,
        "mhla_speedup": result.mhla_speedup_fraction,
        "te_speedup": result.te_speedup_fraction,
        "total_speedup": result.total_speedup_fraction,
        "energy_reduction": result.energy_reduction_fraction,
    }


def results_to_json(results: Sequence[MhlaResult], indent: int = 2) -> str:
    """Serialise several results to a JSON document."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def results_to_csv(results: Sequence[MhlaResult]) -> str:
    """One CSV row per (app, scenario) pair."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["app", "platform", "scenario", "cycles", "energy_nj", "stall_cycles",
         "copies"]
    )
    for result in results:
        flat = result_to_dict(result)
        for scenario_name, data in flat["scenarios"].items():
            writer.writerow(
                [
                    flat["app"],
                    flat["platform"],
                    scenario_name,
                    f"{data['cycles']:.0f}",
                    f"{data['energy_nj']:.3f}",
                    f"{data['stall_cycles']:.0f}",
                    data["copies"],
                ]
            )
    return buffer.getvalue()


# ----------------------------------------------------------------------
# lossless state round-trip (for the content-addressed result store)
# ----------------------------------------------------------------------


def _report_state(report: CostReport) -> dict:
    return {
        "cycles": report.cycles,
        "compute_cycles": report.compute_cycles,
        "cpu_access_cycles": report.cpu_access_cycles,
        "stall_cycles": report.stall_cycles,
        "copy_cpu_cycles": report.copy_cpu_cycles,
        "energy_nj": report.energy_nj,
        "cpu_access_energy_nj": report.cpu_access_energy_nj,
        "transfer_energy_nj": report.transfer_energy_nj,
        "dma_busy_cycles": report.dma_busy_cycles,
        "fill_events": report.fill_events,
        "transfer_words": report.transfer_words,
        "traffic": {
            name: [t.cpu_reads, t.cpu_writes, t.dma_read_words, t.dma_write_words]
            for name, t in report.traffic.items()
        },
    }


def _report_from_state(data: dict) -> CostReport:
    return CostReport(
        cycles=float(data["cycles"]),
        compute_cycles=float(data["compute_cycles"]),
        cpu_access_cycles=float(data["cpu_access_cycles"]),
        stall_cycles=float(data["stall_cycles"]),
        copy_cpu_cycles=float(data["copy_cpu_cycles"]),
        energy_nj=float(data["energy_nj"]),
        cpu_access_energy_nj=float(data["cpu_access_energy_nj"]),
        transfer_energy_nj=float(data["transfer_energy_nj"]),
        dma_busy_cycles=float(data["dma_busy_cycles"]),
        fill_events=int(data["fill_events"]),
        transfer_words=int(data["transfer_words"]),
        traffic={
            name: LayerTraffic(
                cpu_reads=int(row[0]),
                cpu_writes=int(row[1]),
                dma_read_words=int(row[2]),
                dma_write_words=int(row[3]),
            )
            for name, row in data["traffic"].items()
        },
    )


def _assignment_state(assignment: Assignment) -> dict:
    return {
        "array_home": dict(assignment.array_home),
        "copies": {
            group_key: [[uid, layer] for uid, layer in selections]
            for group_key, selections in assignment.copies.items()
        },
    }


def _assignment_from_state(data: dict) -> Assignment:
    return Assignment(
        array_home={str(k): str(v) for k, v in data["array_home"].items()},
        copies={
            str(group_key): tuple(
                (str(uid), str(layer)) for uid, layer in selections
            )
            for group_key, selections in data["copies"].items()
        },
    )


def _te_state(te: TeSchedule | None) -> dict | None:
    if te is None:
        return None
    return {
        "decisions": {
            uid: {
                "bt_uid": d.bt_uid,
                "copy_uid": d.copy_uid,
                "extended_loops": list(d.extended_loops),
                "hidden_cycles": d.hidden_cycles,
                "bt_time": d.bt_time,
                "fully_hidden": d.fully_hidden,
                "blocked_by_size": d.blocked_by_size,
                "priority": d.priority,
            }
            for uid, d in te.decisions.items()
        }
    }


def _te_from_state(data: dict | None) -> TeSchedule | None:
    if data is None:
        return None
    return TeSchedule(
        decisions={
            str(uid): TeDecision(
                bt_uid=str(d["bt_uid"]),
                copy_uid=str(d["copy_uid"]),
                extended_loops=tuple(str(l) for l in d["extended_loops"]),
                hidden_cycles=float(d["hidden_cycles"]),
                bt_time=int(d["bt_time"]),
                fully_hidden=bool(d["fully_hidden"]),
                blocked_by_size=bool(d["blocked_by_size"]),
                priority=int(d["priority"]),
            )
            for uid, d in data["decisions"].items()
        }
    )


def _trace_state(trace: SearchTrace | None) -> dict | None:
    if trace is None:
        return None
    stats = trace.stats
    return {
        "steps": list(trace.steps),
        "initial_value": trace.initial_value,
        "final_value": trace.final_value,
        "strategy": trace.strategy,
        "stats": (
            None
            if stats is None
            else {
                "rounds": stats.rounds,
                "moves_evaluated": stats.moves_evaluated,
                "moves_applied": stats.moves_applied,
                "cleanup_drops": stats.cleanup_drops,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "wall_time_s": stats.wall_time_s,
            }
        ),
    }


def _trace_from_state(data: dict | None) -> SearchTrace | None:
    if data is None:
        return None
    stats = data["stats"]
    strategy = data.get("strategy")  # absent in pre-portfolio states
    return SearchTrace(
        steps=tuple(str(step) for step in data["steps"]),
        initial_value=float(data["initial_value"]),
        final_value=float(data["final_value"]),
        strategy=str(strategy) if strategy is not None else None,
        stats=(
            None
            if stats is None
            else SearchStats(
                rounds=int(stats["rounds"]),
                moves_evaluated=int(stats["moves_evaluated"]),
                moves_applied=int(stats["moves_applied"]),
                cleanup_drops=int(stats["cleanup_drops"]),
                cache_hits=int(stats["cache_hits"]),
                cache_misses=int(stats["cache_misses"]),
                wall_time_s=float(stats["wall_time_s"]),
            )
        ),
    )


def result_to_state(result: MhlaResult) -> dict:
    """Lossless plain-data snapshot of one exploration result.

    The snapshot survives ``json.dumps``/``json.loads`` unchanged
    (floats use shortest-round-trip repr) and
    :func:`result_from_state` rebuilds an :class:`MhlaResult` whose
    report tables are byte-identical to the original's.
    """
    return {
        "format": RESULT_STATE_VERSION,
        "app": result.app_name,
        "platform": result.platform_name,
        "scenarios": {
            name: {
                "scenario": scenario.scenario,
                "app_name": scenario.app_name,
                "report": _report_state(scenario.report),
                "assignment": _assignment_state(scenario.assignment),
                "te": _te_state(scenario.te),
                "trace": _trace_state(scenario.trace),
            }
            for name, scenario in result.scenarios.items()
        },
    }


def result_from_state(state: dict) -> MhlaResult:
    """Rebuild an :class:`MhlaResult` from :func:`result_to_state` data."""
    if state.get("format") != RESULT_STATE_VERSION:
        raise ValidationError(
            f"unsupported result state format {state.get('format')!r}; "
            f"expected {RESULT_STATE_VERSION}"
        )
    try:
        scenarios = {
            str(name): ScenarioResult(
                scenario=str(data["scenario"]),
                app_name=str(data["app_name"]),
                report=_report_from_state(data["report"]),
                assignment=_assignment_from_state(data["assignment"]),
                te=_te_from_state(data["te"]),
                trace=_trace_from_state(data["trace"]),
            )
            for name, data in state["scenarios"].items()
        }
        return MhlaResult(
            app_name=str(state["app"]),
            platform_name=str(state["platform"]),
            scenarios=scenarios,
        )
    except (KeyError, TypeError, IndexError, ValueError, AttributeError) as error:
        raise ValidationError(f"malformed result state: {error}") from None


def result_state_json(result: MhlaResult) -> str:
    """One-line JSON form of :func:`result_to_state` (for JSONL stores)."""
    return json.dumps(result_to_state(result), separators=(",", ":"))


def sweep_to_csv(points: Sequence[TradeoffPoint]) -> str:
    """One CSV row per explored layer size."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["l1_bytes", "mhla_cycles", "te_cycles", "energy_nj", "copies", "edp"]
    )
    for point in points:
        writer.writerow(
            [
                point.l1_bytes,
                f"{point.cycles:.0f}",
                f"{point.te_cycles:.0f}",
                f"{point.energy_nj:.3f}",
                point.copies,
                f"{point.edp:.6e}",
            ]
        )
    return buffer.getvalue()
