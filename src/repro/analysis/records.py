"""Experiment records: paper claim vs measured value.

EXPERIMENTS.md tracks, for every figure/table of the paper, what the
paper claims and what this reproduction measures.  The benchmark
harness produces :class:`ExperimentRecord` values; ``render_records``
turns them into the markdown rows so the document can be regenerated
mechanically instead of hand-edited.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentRecord:
    """One row of the paper-vs-measured ledger."""

    experiment_id: str
    artefact: str  # e.g. "Figure 2"
    claim: str  # the paper's statement
    measured: str  # what this repo reproduces
    verdict: str  # "holds" | "holds (shape)" | "deviates: ..."

    def as_markdown_row(self) -> str:
        """Render as a markdown table row."""
        return (
            f"| {self.experiment_id} | {self.artefact} | {self.claim} | "
            f"{self.measured} | {self.verdict} |"
        )


RECORD_TABLE_HEADER = (
    "| exp id | artefact | paper claim | measured | verdict |\n"
    "|---|---|---|---|---|"
)


def render_records(records: list[ExperimentRecord]) -> str:
    """Render a full markdown table of experiment records."""
    lines = [RECORD_TABLE_HEADER]
    lines.extend(record.as_markdown_row() for record in records)
    return "\n".join(lines)
