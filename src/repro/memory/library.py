"""Discrete memory-module library.

The analytic models in :mod:`repro.memory.energy`/:mod:`timing` give a
continuous cost curve, but a real design flow (and the paper's tool,
fed by "architecture specific constraints and models") chooses from a
*library* of concrete SRAM modules — discrete capacities with
characterised energy/latency.  This module provides that workflow:

* :class:`MemoryModule` — one characterised module;
* :class:`MemoryLibrary` — a catalogue with best-fit lookup;
* :func:`default_sram_library` — a catalogue sampled from the analytic
  models at power-of-two capacities (stand-in for a vendor datasheet);
* :func:`platform_from_library` — build an experiment platform whose
  on-chip layers are *library modules*, so a trade-off sweep explores
  exactly the capacities a designer could instantiate.

The trade-off engine works unchanged on top: pass
``lambda size: platform_from_library(lib, l1_bytes=size)`` as the
platform factory and the sweep snaps every point to real modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import ValidationError
from repro.memory.dma import DmaModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layer import MemoryLayer
from repro.memory.presets import Platform, build_offchip_layer, build_sram_layer
from repro.units import fmt_bytes, kib


@dataclass(frozen=True)
class MemoryModule:
    """One instantiable SRAM module from a vendor library."""

    part_name: str
    capacity_bytes: int
    read_energy_nj: float
    write_energy_nj: float
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValidationError(
                f"module {self.part_name!r} needs a positive capacity"
            )
        if self.latency_cycles < 1:
            raise ValidationError(
                f"module {self.part_name!r} needs latency >= 1"
            )
        if min(self.read_energy_nj, self.write_energy_nj) < 0:
            raise ValidationError(
                f"module {self.part_name!r} has negative energy"
            )

    def as_layer(self, layer_name: str) -> MemoryLayer:
        """Instantiate this module as an on-chip hierarchy layer."""
        return MemoryLayer(
            name=layer_name,
            capacity_bytes=self.capacity_bytes,
            read_energy_nj=self.read_energy_nj,
            write_energy_nj=self.write_energy_nj,
            latency_cycles=self.latency_cycles,
            burst_read_energy_nj=self.read_energy_nj * 0.8,
            burst_write_energy_nj=self.write_energy_nj * 0.8,
            burst_cycles_per_word=1.0,
            is_offchip=False,
        )

    def __str__(self) -> str:
        return (
            f"{self.part_name} ({fmt_bytes(self.capacity_bytes)}, "
            f"{self.latency_cycles} cyc, {self.read_energy_nj:.3f} nJ/rd)"
        )


@dataclass(frozen=True)
class MemoryLibrary:
    """A catalogue of instantiable modules."""

    name: str
    modules: tuple[MemoryModule, ...]

    def __post_init__(self) -> None:
        if not self.modules:
            raise ValidationError(f"library {self.name!r} is empty")
        names = [module.part_name for module in self.modules]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"library {self.name!r} has duplicate part names"
            )

    @cached_property
    def by_capacity(self) -> tuple[MemoryModule, ...]:
        """Modules sorted by capacity, ascending."""
        return tuple(sorted(self.modules, key=lambda m: m.capacity_bytes))

    @property
    def capacities(self) -> tuple[int, ...]:
        """Available capacities, ascending (sweep points for trade-offs)."""
        return tuple(module.capacity_bytes for module in self.by_capacity)

    def best_fit(self, min_capacity_bytes: int) -> MemoryModule:
        """Smallest module holding at least *min_capacity_bytes*."""
        for module in self.by_capacity:
            if module.capacity_bytes >= min_capacity_bytes:
                return module
        raise ValidationError(
            f"library {self.name!r} has no module >= "
            f"{fmt_bytes(min_capacity_bytes)} "
            f"(largest: {fmt_bytes(self.by_capacity[-1].capacity_bytes)})"
        )

    def exact(self, capacity_bytes: int) -> MemoryModule:
        """Module with exactly the given capacity."""
        for module in self.by_capacity:
            if module.capacity_bytes == capacity_bytes:
                return module
        raise ValidationError(
            f"library {self.name!r} has no {fmt_bytes(capacity_bytes)} module"
        )


def default_sram_library(
    min_kib: float = 0.5, max_kib: float = 256
) -> MemoryLibrary:
    """Power-of-two catalogue sampled from the analytic SRAM models.

    Stands in for a vendor datasheet: same cost *curve* as the analytic
    models, but only discrete capacities are instantiable.
    """
    modules = []
    size = kib(min_kib)
    limit = kib(max_kib)
    while size <= limit:
        reference = build_sram_layer(f"ref{size}", size)
        modules.append(
            MemoryModule(
                part_name=f"SPM{fmt_bytes(size).replace(' ', '')}",
                capacity_bytes=size,
                read_energy_nj=reference.read_energy_nj,
                write_energy_nj=reference.write_energy_nj,
                latency_cycles=reference.latency_cycles,
            )
        )
        size *= 2
    return MemoryLibrary(name="default-sram", modules=tuple(modules))


def platform_from_library(
    library: MemoryLibrary,
    l1_bytes: int,
    l2_bytes: int | None = None,
    dma: DmaModel | None = None,
) -> Platform:
    """Build a platform whose on-chip layers are library modules.

    Sizes are snapped to the smallest module that fits the request
    (best-fit), mirroring how a designer picks parts.  ``l2_bytes``
    defaults to the smallest module at least 4x the chosen L1.
    """
    l1_module = library.best_fit(l1_bytes)
    if l2_bytes is None:
        l2_bytes = 4 * l1_module.capacity_bytes
    try:
        l2_module = library.best_fit(max(l2_bytes, 2 * l1_module.capacity_bytes))
    except ValidationError:
        # no module that big: fall back to the largest part available
        l2_module = library.by_capacity[-1]
    if l2_module.capacity_bytes <= l1_module.capacity_bytes:
        raise ValidationError(
            "library cannot realise a strictly decreasing L2 > L1 pair for "
            f"L1={fmt_bytes(l1_module.capacity_bytes)}"
        )
    hierarchy = MemoryHierarchy(
        name=f"lib:{library.name}",
        layers=(
            build_offchip_layer(),
            l2_module.as_layer("l2"),
            l1_module.as_layer("l1"),
        ),
    )
    return Platform(
        name=f"library-{library.name}",
        hierarchy=hierarchy,
        dma=dma if dma is not None else DmaModel(),
    )
