"""Ready-made platforms.

A :class:`Platform` bundles everything the cost model and simulator need
about the target: a :class:`~repro.memory.hierarchy.MemoryHierarchy`, an
optional :class:`~repro.memory.dma.DmaModel` (the paper: "In case that
our architecture does not support a memory transfer engine, TE are not
applicable"), and the bus word size used to convert element counts into
transfer words.

The default experimental platform, :func:`embedded_3layer`, mirrors the
paper-era embedded SoC: off-chip SDRAM + a 64 KiB on-chip SRAM (L2) + an
8 KiB scratchpad (L1), with a DMA engine.  Layer sizes are parameters so
the trade-off sweeps (DESIGN.md: TAB-TRADEOFF) can rebuild the platform
at many points; energy and latency are re-derived from the analytic
models on every rebuild, as a real memory library would.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError

PLATFORM_MODEL_VERSION = 1
"""Cache-busting version of the platform cost models.

Cache keys identify a preset platform only by its recipe (kind +
sizes); the latency/energy tables behind the recipe live here and in
:mod:`repro.memory.energy`/:mod:`repro.memory.timing`.  Bump this when
any of those models change so memoized exploration results computed
under the old models are never served for the new ones.
"""
from repro.memory.dma import DmaModel
from repro.memory.energy import (
    DRAM_BURST_READ_NJ,
    DRAM_BURST_WRITE_NJ,
    DRAM_READ_NJ,
    DRAM_WRITE_NJ,
    sram_burst_read_energy_nj,
    sram_burst_write_energy_nj,
    sram_read_energy_nj,
    sram_write_energy_nj,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.layer import MemoryLayer
from repro.memory.timing import (
    DRAM_BURST_CYCLES_PER_WORD,
    DRAM_RANDOM_LATENCY_CYCLES,
    SRAM_BURST_CYCLES_PER_WORD,
    sram_latency_cycles,
)
from repro.units import kib


@dataclass(frozen=True)
class Platform:
    """A complete target description for cost estimation and simulation."""

    name: str
    hierarchy: MemoryHierarchy
    dma: DmaModel | None
    word_bytes: int = 4

    def __post_init__(self) -> None:
        if self.word_bytes < 1:
            raise ValidationError("word_bytes must be >= 1")

    @property
    def supports_te(self) -> bool:
        """Time extensions need a memory transfer engine (paper, section 1)."""
        return self.dma is not None

    def words_for_bytes(self, nbytes: int) -> int:
        """Bus words needed to move *nbytes* (rounded up)."""
        return -(-nbytes // self.word_bytes)

    def without_dma(self) -> "Platform":
        """Variant of this platform with no transfer engine."""
        return replace(self, name=f"{self.name}-nodma", dma=None)


def build_offchip_layer(name: str = "sdram") -> MemoryLayer:
    """Off-chip SDRAM layer with library-calibrated costs."""
    return MemoryLayer(
        name=name,
        capacity_bytes=0,
        read_energy_nj=DRAM_READ_NJ,
        write_energy_nj=DRAM_WRITE_NJ,
        latency_cycles=DRAM_RANDOM_LATENCY_CYCLES,
        burst_read_energy_nj=DRAM_BURST_READ_NJ,
        burst_write_energy_nj=DRAM_BURST_WRITE_NJ,
        burst_cycles_per_word=DRAM_BURST_CYCLES_PER_WORD,
        is_offchip=True,
    )


def build_sram_layer(name: str, capacity_bytes: int) -> MemoryLayer:
    """On-chip SRAM layer whose costs follow the analytic models."""
    if capacity_bytes <= 0:
        raise ValidationError(f"SRAM layer {name!r} needs a positive capacity")
    return MemoryLayer(
        name=name,
        capacity_bytes=capacity_bytes,
        read_energy_nj=sram_read_energy_nj(capacity_bytes),
        write_energy_nj=sram_write_energy_nj(capacity_bytes),
        latency_cycles=sram_latency_cycles(capacity_bytes),
        burst_read_energy_nj=sram_burst_read_energy_nj(capacity_bytes),
        burst_write_energy_nj=sram_burst_write_energy_nj(capacity_bytes),
        burst_cycles_per_word=SRAM_BURST_CYCLES_PER_WORD,
        is_offchip=False,
    )


def embedded_3layer(
    l1_bytes: int = kib(8),
    l2_bytes: int = kib(64),
    dma: DmaModel | None = None,
) -> Platform:
    """The default experimental platform: SDRAM + L2 SRAM + L1 scratchpad."""
    if l1_bytes >= l2_bytes:
        raise ValidationError(
            f"L1 ({l1_bytes} B) must be smaller than L2 ({l2_bytes} B)"
        )
    hierarchy = MemoryHierarchy(
        name="sdram+l2+l1",
        layers=(
            build_offchip_layer(),
            build_sram_layer("l2", l2_bytes),
            build_sram_layer("l1", l1_bytes),
        ),
    )
    return Platform(
        name="embedded-3layer",
        hierarchy=hierarchy,
        dma=dma if dma is not None else DmaModel(),
    )


def embedded_2layer(
    onchip_bytes: int = kib(16), dma: DmaModel | None = None
) -> Platform:
    """A simpler platform: SDRAM + one on-chip scratchpad."""
    hierarchy = MemoryHierarchy(
        name="sdram+spm",
        layers=(
            build_offchip_layer(),
            build_sram_layer("spm", onchip_bytes),
        ),
    )
    return Platform(
        name="embedded-2layer",
        hierarchy=hierarchy,
        dma=dma if dma is not None else DmaModel(),
    )


def build_platform(
    name: str,
    onchip: tuple[tuple[str, int], ...],
    dma: DmaModel | None = None,
    word_bytes: int = 4,
) -> Platform:
    """Assemble a platform from an arbitrary on-chip layer list.

    *onchip* is ``(layer_name, capacity_bytes)`` pairs ordered furthest
    to closest; the hierarchy validates that capacities strictly
    decrease towards the CPU.  Layer latencies and energies are derived
    from the analytic SRAM models exactly as the fixed presets do, so
    generated platforms (``repro.synth``) stay within the calibrated
    cost envelope.
    """
    if not onchip:
        raise ValidationError("a platform needs at least one on-chip layer")
    hierarchy = MemoryHierarchy(
        name=f"{name}-hier",
        layers=(
            build_offchip_layer(),
            *(
                build_sram_layer(layer_name, capacity)
                for layer_name, capacity in onchip
            ),
        ),
    )
    return Platform(
        name=name, hierarchy=hierarchy, dma=dma, word_bytes=word_bytes
    )


def ideal_onchip_platform(capacity_bytes: int = kib(1024)) -> Platform:
    """A platform with a huge single on-chip layer (upper-bound studies)."""
    hierarchy = MemoryHierarchy(
        name="sdram+big",
        layers=(
            build_offchip_layer(),
            build_sram_layer("big", capacity_bytes),
        ),
    )
    return Platform(name="ideal-onchip", hierarchy=hierarchy, dma=DmaModel())
