"""Ordered multi-layer memory hierarchy.

Layers are ordered **furthest to closest**: index 0 is the off-chip
memory, the last index is the smallest scratchpad next to the CPU.  MHLA
moves data *down* this ordering (towards the CPU) via copies; a copy's
layer must be strictly closer than the layer it is filled from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ValidationError
from repro.memory.layer import MemoryLayer


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered tuple of :class:`MemoryLayer`, furthest first."""

    name: str
    layers: tuple[MemoryLayer, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("hierarchy name must be non-empty")
        if len(self.layers) < 2:
            raise ValidationError(
                "a hierarchy needs at least two layers (off-chip + one on-chip)"
            )
        if not self.layers[0].is_offchip:
            raise ValidationError("layer 0 must be the off-chip memory")
        for layer in self.layers[1:]:
            if layer.is_offchip:
                raise ValidationError(
                    "only layer 0 may be off-chip; "
                    f"{layer.name!r} is marked off-chip"
                )
            if layer.is_unbounded:
                raise ValidationError(
                    f"on-chip layer {layer.name!r} must have a finite capacity"
                )
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate layer names in hierarchy: {names}")
        capacities = [layer.capacity_bytes for layer in self.layers[1:]]
        if any(
            capacities[i] <= capacities[i + 1] for i in range(len(capacities) - 1)
        ):
            raise ValidationError(
                "on-chip layer capacities must strictly decrease towards the CPU: "
                f"{capacities}"
            )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def offchip(self) -> MemoryLayer:
        """The off-chip (furthest, unbounded) layer."""
        return self.layers[0]

    @property
    def onchip_layers(self) -> tuple[MemoryLayer, ...]:
        """All on-chip layers, furthest first."""
        return self.layers[1:]

    @property
    def closest(self) -> MemoryLayer:
        """The layer nearest the CPU."""
        return self.layers[-1]

    def __iter__(self) -> Iterator[MemoryLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> MemoryLayer:
        """Look up a layer by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise ValidationError(f"hierarchy {self.name!r} has no layer {name!r}")

    def index_of(self, layer: MemoryLayer | str) -> int:
        """Index of *layer* (0 = off-chip)."""
        name = layer if isinstance(layer, str) else layer.name
        for index, candidate in enumerate(self.layers):
            if candidate.name == name:
                return index
        raise ValidationError(f"hierarchy {self.name!r} has no layer {name!r}")

    def is_closer(self, a: MemoryLayer | str, b: MemoryLayer | str) -> bool:
        """True if layer *a* is strictly closer to the CPU than *b*."""
        return self.index_of(a) > self.index_of(b)

    def layers_closer_than(self, layer: MemoryLayer | str) -> tuple[MemoryLayer, ...]:
        """All layers strictly closer to the CPU than *layer*."""
        return self.layers[self.index_of(layer) + 1 :]

    def parent_of(self, layer: MemoryLayer | str) -> MemoryLayer:
        """The next layer further from the CPU (the default fill source)."""
        index = self.index_of(layer)
        if index == 0:
            raise ValidationError(
                f"{self.offchip.name!r} is the furthest layer and has no parent"
            )
        return self.layers[index - 1]

    @property
    def total_onchip_capacity(self) -> int:
        """Sum of on-chip layer capacities in bytes."""
        return sum(layer.capacity_bytes for layer in self.onchip_layers)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"hierarchy {self.name!r}:"]
        for index, layer in enumerate(self.layers):
            lines.append(f"  [{index}] {layer}")
        return "\n".join(lines)
