"""A single memory layer.

Each layer carries two cost points per direction:

* *random access* — what a CPU load/store pays (``read_energy_nj``,
  ``write_energy_nj``, ``latency_cycles``); and
* *burst access* — what a DMA block transfer pays per word once a burst
  is open (``burst_read_energy_nj``, ``burst_write_energy_nj``,
  ``burst_cycles_per_word``).  Burst costs are lower, especially for
  SDRAM, because row activation is amortised over the burst — this is
  why copying a block via DMA and then reading it from a scratchpad beats
  reading each element from SDRAM directly, the effect MHLA exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError
from repro.units import fmt_bytes


@dataclass(frozen=True)
class MemoryLayer:
    """Capacity and access-cost parameters of one hierarchy layer.

    ``capacity_bytes == 0`` denotes an effectively unbounded layer
    (off-chip SDRAM is orders of magnitude larger than any working set
    in the paper's application domain).
    """

    name: str
    capacity_bytes: int
    read_energy_nj: float
    write_energy_nj: float
    latency_cycles: int
    burst_read_energy_nj: float
    burst_write_energy_nj: float
    burst_cycles_per_word: float
    is_offchip: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("layer name must be non-empty")
        if self.capacity_bytes < 0:
            raise ValidationError(f"layer {self.name!r}: negative capacity")
        if self.latency_cycles < 1:
            raise ValidationError(
                f"layer {self.name!r}: latency must be >= 1 cycle"
            )
        for field_name in (
            "read_energy_nj",
            "write_energy_nj",
            "burst_read_energy_nj",
            "burst_write_energy_nj",
            "burst_cycles_per_word",
        ):
            if getattr(self, field_name) < 0:
                raise ValidationError(
                    f"layer {self.name!r}: {field_name} must be >= 0"
                )

    @property
    def is_unbounded(self) -> bool:
        """True when the layer has no meaningful capacity limit."""
        return self.capacity_bytes == 0

    def fits(self, request_bytes: int) -> bool:
        """Whether *request_bytes* fits within this layer's capacity."""
        return self.is_unbounded or request_bytes <= self.capacity_bytes

    def access_energy_nj(self, is_write: bool) -> float:
        """Random-access energy for one CPU access."""
        return self.write_energy_nj if is_write else self.read_energy_nj

    def burst_energy_nj(self, is_write: bool) -> float:
        """Per-word energy inside an open DMA burst."""
        return self.burst_write_energy_nj if is_write else self.burst_read_energy_nj

    def resized(self, capacity_bytes: int) -> "MemoryLayer":
        """Return a copy with a different capacity (cost fields unchanged).

        Prefer :func:`repro.memory.presets.build_sram_layer` when the new
        size should also re-derive energy/latency from the analytic model;
        this method is for pure capacity what-ifs.
        """
        return replace(self, capacity_bytes=capacity_bytes)

    def __str__(self) -> str:
        cap = "unbounded" if self.is_unbounded else fmt_bytes(self.capacity_bytes)
        where = "off-chip" if self.is_offchip else "on-chip"
        return (
            f"{self.name} ({where}, {cap}, {self.latency_cycles} cyc, "
            f"{self.read_energy_nj:.3f} nJ/rd)"
        )
