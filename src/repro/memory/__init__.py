"""Memory hierarchy substrate.

Models the target platform of the paper: an off-chip SDRAM plus one or
more on-chip SRAM scratchpad layers, with a DMA engine ("memory transfer
engine" / "data mover") that moves blocks between layers while the CPU
keeps computing.

* :class:`~repro.memory.layer.MemoryLayer` — one layer's capacity,
  per-access energy and latency (random access and burst mode).
* :class:`~repro.memory.hierarchy.MemoryHierarchy` — ordered layers,
  furthest (off-chip) to closest (smallest scratchpad).
* :mod:`~repro.memory.energy` / :mod:`~repro.memory.timing` — CACTI-style
  analytic models giving energy/latency as a function of SRAM capacity,
  calibrated to the published orders of magnitude of the paper's era
  (off-chip access costs roughly an order of magnitude more energy and
  latency than a small on-chip scratchpad).
* :class:`~repro.memory.dma.DmaModel` — block-transfer cost model
  (setup cycles + per-word burst cycles and energy).
* :mod:`~repro.memory.presets` — ready-made platforms used by the
  experiments (``embedded_3layer`` et al.).
"""

from repro.memory.layer import MemoryLayer
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.dma import DmaModel
from repro.memory.presets import (
    build_platform,
    embedded_2layer,
    embedded_3layer,
    ideal_onchip_platform,
    Platform,
)

__all__ = [
    "DmaModel",
    "MemoryHierarchy",
    "MemoryLayer",
    "Platform",
    "build_platform",
    "embedded_2layer",
    "embedded_3layer",
    "ideal_onchip_platform",
]
