"""Block-transfer (DMA) cost model.

The paper's Time Extensions require "a memory transfer engine (like DMA
engine or data mover) that allows simultaneous[ly] the CPU to continue
processing data and the engine to copy off-chip data to on-chip layers".
This model provides the two quantities MHLA needs per block transfer
(BT):

* ``transfer_cycles(words, src, dst)`` — the ``BT_time`` of Figure 1:
  engine setup plus per-word streaming time, paced by the slower of the
  two endpoints' burst rates;
* ``transfer_energy_nj(words, src, dst)`` — burst read energy at the
  source, burst write energy at the destination, plus the engine's own
  per-word overhead.

Energy is direction-agnostic at this level: an off-chip -> on-chip fill
reads the off-chip layer and writes the on-chip one, a write-back does
the reverse; callers pass ``src``/``dst`` accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.memory.layer import MemoryLayer


@dataclass(frozen=True)
class DmaModel:
    """Cost parameters of the platform's memory transfer engine.

    Parameters
    ----------
    setup_cycles:
        Fixed cost to program and start one block transfer (descriptor
        write, channel arbitration).
    energy_per_word_nj:
        Engine + bus energy per transferred word, on top of the memory
        endpoints' burst energies.
    min_words:
        Transfers are rounded up to this granularity (bus beat size).
    """

    setup_cycles: int = 30
    energy_per_word_nj: float = 0.1
    min_words: int = 4

    def __post_init__(self) -> None:
        if self.setup_cycles < 0:
            raise ValidationError("DMA setup_cycles must be >= 0")
        if self.energy_per_word_nj < 0:
            raise ValidationError("DMA energy_per_word_nj must be >= 0")
        if self.min_words < 1:
            raise ValidationError("DMA min_words must be >= 1")

    def effective_words(self, words: int) -> int:
        """Words actually moved after granularity rounding."""
        if words <= 0:
            return 0
        remainder = words % self.min_words
        if remainder:
            words += self.min_words - remainder
        return words

    def transfer_cycles(
        self, words: int, src: MemoryLayer, dst: MemoryLayer
    ) -> int:
        """Engine-occupancy cycles of one block transfer (``BT_time``)."""
        moved = self.effective_words(words)
        if moved == 0:
            return 0
        per_word = max(src.burst_cycles_per_word, dst.burst_cycles_per_word)
        return self.setup_cycles + int(round(moved * per_word))

    def transfer_energy_nj(
        self, words: int, src: MemoryLayer, dst: MemoryLayer
    ) -> float:
        """Total energy of one block transfer."""
        moved = self.effective_words(words)
        if moved == 0:
            return 0.0
        per_word = (
            src.burst_energy_nj(is_write=False)
            + dst.burst_energy_nj(is_write=True)
            + self.energy_per_word_nj
        )
        return moved * per_word
