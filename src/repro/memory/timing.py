"""Analytic latency model for on-chip SRAM and off-chip SDRAM.

Latency grows with SRAM capacity (longer word/bit lines, deeper decode).
We use a step model calibrated to embedded SoCs of the paper's era
(~130 nm, CPU clock a few hundred MHz):

* scratchpads up to 16 KiB   — single-cycle access;
* up to 128 KiB              — 2 cycles;
* up to 1 MiB                — 3 cycles;
* larger on-chip             — 4 cycles.

Off-chip SDRAM pays bus + controller overhead on every access.  The
random-access figure of 12 CPU cycles models the page-hit-dominated
behaviour of array code (a row miss costs far more, a same-row access
less); once a DMA burst is open the stream runs at ~2 CPU cycles per
word.  Only the *ratios* between these numbers matter for the
trade-offs the paper explores; absolute values scale every scenario
identically.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.units import KIB, MIB

DRAM_RANDOM_LATENCY_CYCLES = 8
"""CPU stall cycles for one off-chip access (page-hit-dominated mix:
row-major array code hits open SDRAM rows most of the time)."""

DRAM_BURST_CYCLES_PER_WORD = 4.0
"""Per-word cycles inside an open SDRAM burst (DMA transfers over a
paper-era 16-bit memory bus running below the CPU clock)."""

_SRAM_LATENCY_STEPS: tuple[tuple[int, int], ...] = (
    (16 * KIB, 1),
    (128 * KIB, 2),
    (1 * MIB, 3),
)

SRAM_BURST_CYCLES_PER_WORD = 1.0
"""Per-word cycles when DMA streams to/from on-chip SRAM."""


def sram_latency_cycles(capacity_bytes: int) -> int:
    """Random-access latency of an on-chip SRAM of the given capacity."""
    if capacity_bytes <= 0:
        raise ValidationError("SRAM capacity must be positive")
    for threshold, cycles in _SRAM_LATENCY_STEPS:
        if capacity_bytes <= threshold:
            return cycles
    return 4
