"""Analytic energy model for memory accesses.

The paper (and its predecessor, Brockmeyer et al. DATE 2003) evaluates
energy as ``sum over layers of accesses(layer) * E_access(layer)``, with
``E_access`` taken from a memory library in which energy per access grows
with capacity.  We reproduce that with a CACTI-style square-root model
for on-chip SRAM:

    E_read(C) = E_1KIB * sqrt(C / 1 KiB)

calibrated so a 1 KiB scratchpad costs ~0.05 nJ/read and a 64 KiB layer
~0.4 nJ/read (130 nm-era published figures).  Writes cost ~20% more.

Off-chip SDRAM access energy is dominated by I/O drivers and row
activation.  For the page-hit-dominated access patterns of array code we
use ~2.4 nJ per access (page-hit-dominated mix); inside a burst the
per-word energy drops to ~1.0 nJ because row activation is amortised.  The
off-chip/on-chip ratio is the force behind the paper's up-to-70% energy
gains.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.units import KIB

SRAM_READ_NJ_AT_1KIB = 0.05
"""Read energy of a 1 KiB scratchpad (calibration anchor)."""

SRAM_WRITE_FACTOR = 1.2
"""Write energy relative to read energy for SRAM."""

SRAM_BURST_FACTOR = 0.8
"""Per-word burst energy relative to random access for SRAM."""

DRAM_READ_NJ = 2.4
"""Energy of one random off-chip read (32-bit word, page-hit mix)."""

DRAM_WRITE_NJ = 2.6
"""Energy of one random off-chip write."""

DRAM_BURST_READ_NJ = 1.0
"""Per-word read energy inside an open SDRAM burst."""

DRAM_BURST_WRITE_NJ = 1.1
"""Per-word write energy inside an open SDRAM burst."""


def sram_read_energy_nj(capacity_bytes: int) -> float:
    """Random-access read energy of an SRAM of the given capacity."""
    if capacity_bytes <= 0:
        raise ValidationError("SRAM capacity must be positive")
    return SRAM_READ_NJ_AT_1KIB * math.sqrt(capacity_bytes / KIB)


def sram_write_energy_nj(capacity_bytes: int) -> float:
    """Random-access write energy of an SRAM of the given capacity."""
    return sram_read_energy_nj(capacity_bytes) * SRAM_WRITE_FACTOR


def sram_burst_read_energy_nj(capacity_bytes: int) -> float:
    """Per-word burst read energy of an SRAM of the given capacity."""
    return sram_read_energy_nj(capacity_bytes) * SRAM_BURST_FACTOR


def sram_burst_write_energy_nj(capacity_bytes: int) -> float:
    """Per-word burst write energy of an SRAM of the given capacity."""
    return sram_write_energy_nj(capacity_bytes) * SRAM_BURST_FACTOR
