"""Exception hierarchy for the :mod:`repro` library.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The
sub-classes partition failures by pipeline stage: program construction
(:class:`ValidationError`), memory modelling (:class:`CapacityError`),
the MHLA assignment search (:class:`AssignmentError`), the time-extension
step (:class:`ScheduleError`), the discrete-event simulator
(:class:`SimulationError`) and the exploration service's result store
(:class:`StoreError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError):
    """A program, reference or builder invariant was violated.

    Raised while constructing or freezing IR objects: duplicate names,
    non-positive trip counts, references to undeclared loops or arrays,
    rank mismatches between a reference and its array, and similar
    structural problems.
    """


class CapacityError(ReproError):
    """A buffer placement exceeds the capacity of a memory layer."""


class AssignmentError(ReproError):
    """The MHLA assignment search was asked to do something impossible.

    For example: no layer is large enough to host an array, or an
    explicitly requested placement conflicts with the hierarchy.
    """


class ScheduleError(ReproError):
    """The time-extension (prefetch) scheduler hit an inconsistent state."""


class EvaluationError(ReproError):
    """A sweep cell evaluation failed (carries the worker's error text)."""


class ServiceError(ReproError):
    """The exploration service was asked for an unknown or failed job."""


class StoreError(ReproError):
    """The result store was misused (bad key/kind or invalid limits).

    Raised for attempts to ``put`` under a reserved lifecycle record
    kind (``touch``/``tombstone``/``compaction``), empty or non-string
    keys, and non-positive eviction/segment size limits.
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an internal inconsistency."""
