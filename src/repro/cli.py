"""Command-line interface: ``repro`` / ``python -m repro``.

Sub-commands mirror the experiments:

* ``repro list``                 — the nine applications
* ``repro run APP``              — four scenarios for one application
* ``repro search APP``           — race the metaheuristic assigner
  portfolio against the greedy engine on one application
  (``--assigner NAME --budget N --search-seed S``; ``--jobs N`` races
  portfolio members across worker processes with byte-identical
  winner and attribution)
* ``repro fig2``                 — Figure 2 (performance) for the suite
* ``repro fig3``                 — Figure 3 (energy) for the suite
* ``repro sweep APP``            — L1-size trade-off sweep (TAB-TRADEOFF)
* ``repro sweep``                — app x platform x objective grid sweep
* ``repro sweep --synthetic N``  — grid sweep over N generated apps
* ``repro simulate APP``         — estimator-vs-simulator validation
* ``repro show APP``             — program structure + copy candidates
* ``repro fuzz``                 — differential verification on
  generated cases (cross-checks estimator, incremental engine,
  exhaustive oracle and simulator; failures shrink to reproducers)
* ``repro serve``                — JSON-RPC exploration service
  (submit/poll/result/batch against a shared result cache) over
  stdin/stdout, or to many concurrent network tenants via
  ``--listen HOST:PORT`` / ``--socket PATH`` (bounded admission with
  backpressure errors; graceful drain on SIGINT/SIGTERM)
* ``repro call``                 — one-shot JSON-RPC request against a
  running socket server (``--connect HOST:PORT`` / ``--socket PATH``)
* ``repro cache stats DIR``      — cache occupancy, segment layout and
  damage counters
* ``repro cache compact DIR``    — crash-safe offline compaction
  (rewrites live records, reclaims tombstoned/stale bytes)
* ``repro cache gc DIR``         — evict least-recently-used records
  down to ``--max-bytes``/``--max-entries``
* ``repro cache verify DIR``     — re-scan every segment and report
  corrupt/unrecognised lines and suspect keys (``--deep`` also
  rebuilds each stored result)
* ``repro obs tail FILE``        — pretty-print (or ``--follow``) a
  ``--trace-log`` file, optionally filtered to one ``--trace-id``

Observability: ``repro run/sweep/search/fuzz/serve/call`` uniformly
accept ``--log-level``/``--log-json`` (structured stderr logging),
``--trace-log FILE`` (JSON-lines span events, shared by every process
of a fleet) and ``--slow-ms T`` (spans slower than T additionally emit
a ``slow_request`` dump).  ``repro run/sweep/serve --profile DIR``
wraps each cell evaluation in ``cProfile`` and writes one
``DIR/<key>.pstats`` artifact per unique cell.  ``repro call metrics``
prints the serving stack's full metrics registry as Prometheus text;
``repro cache stats/verify --json`` emit machine-readable reports.

Both sweep forms accept ``--jobs N`` to fan the independent
explorations across the process-wide persistent worker pool (created
on the first parallel sweep, reused by every later one in the same
process); results are returned in deterministic order, so the output
is identical to a serial run.

``repro run``, ``repro sweep``, ``repro fuzz`` and ``repro serve``
accept ``--cache DIR``: exploration results (and clean fuzz verdicts)
are memoized in a content-addressed store under DIR, so warm re-runs
skip evaluation entirely and print byte-identical reports.
``--cache-max-bytes``/``--cache-max-entries`` bound the store: once it
outgrows a bound, least-recently-used records are evicted (an evicted
request is simply re-evaluated on its next appearance — results stay
byte-identical either way).

``repro run``/``sweep``/``serve`` also accept ``--assigner NAME``
(with ``--budget N``, ``--search-seed S`` and ``--budget-seconds T``,
a wall-clock cut-off composing with the node budget) to swap the
step-1 search engine: ``greedy`` (default), one of the metaheuristics
(``annealing``/``tabu``/``beam``/``restart``/``exact``) or the
``portfolio`` racing all of them; ``repro fuzz --assigner`` picks the
engine the ``metaheuristic`` differential check verifies.  The
assigner config is part of the cache key, so differently configured
runs never share memoized results.

Exit codes are uniform across sub-commands: ``2`` for user errors
(bad arguments, invalid specs, missing cache directories), ``1`` for
internal failures (a crash inside the flow, failed sweep cells,
failing verification), ``0`` for success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.charts import grouped_bar_chart
from repro.analysis.pareto import pareto_front
from repro.analysis.report import scenario_table, search_stats_table, sweep_table
from repro.analysis.sweep import (
    ParallelSweepRunner,
    PlatformSpec,
    SweepCell,
    full_grid,
    grid_table,
    synthetic_grid,
)
from repro.apps import all_app_names, app_descriptions, build_app
from repro.core.assignment import Objective
from repro.core.mhla import Mhla
from repro.core.scenarios import SCENARIO_ORDER
from repro.core.tradeoff import TradeoffPoint, default_l2_bytes
from repro.memory.presets import embedded_3layer
from repro.sim import simulate
from repro.sim.stats import relative_error
from repro.units import fmt_bytes, kib


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, description in app_descriptions().items():
        print(f"{name:18s} {description}")
    return 0


def _configure_obs(args: argparse.Namespace) -> None:
    """Apply the uniform observability flags (no-op without them).

    Flags the user did not pass never *clear* settings inherited from
    the environment (``REPRO_TRACE_LOG``/``REPRO_SLOW_MS``) — a child
    ``repro`` invocation inside a traced fleet stays traced.
    """
    from repro import obs
    from repro.obs import trace as obs_trace

    level = getattr(args, "log_level", None)
    log_json = getattr(args, "log_json", False)
    if level is not None or log_json:
        obs.setup_logging(level=level or "warning", json_lines=log_json)
    trace_log = getattr(args, "trace_log", None)
    slow_ms = getattr(args, "slow_ms", None)
    if trace_log is not None or slow_ms is not None:
        current_slow = obs_trace.slow_threshold_s()
        obs.configure(
            trace_log=(
                trace_log
                if trace_log is not None
                else obs_trace.configured_trace_log()
            ),
            slow_ms=(
                slow_ms
                if slow_ms is not None
                else (
                    current_slow * 1000.0
                    if current_slow is not None
                    else None
                )
            ),
        )
    if getattr(args, "profile", None) is not None:
        obs.configure_profile_dir(args.profile)


SERVE_AUTO_COMPACT_RATIO = 4.0
"""``repro serve`` compacts once files exceed 4x the live bytes."""


def _make_store(
    args: argparse.Namespace, auto_compact_ratio: float | None = None
):
    """Build the ``--cache`` result store with any eviction bounds.

    Auto-compaction is only passed by ``repro serve`` — the one
    deployment where this process provably owns the directory.
    """
    from repro.service import DEFAULT_CLAIM_TTL_S, ResultStore

    return ResultStore(
        args.cache,
        max_bytes=getattr(args, "cache_max_bytes", None),
        max_records=getattr(args, "cache_max_entries", None),
        claim_ttl_s=getattr(args, "claim_ttl", None) or DEFAULT_CLAIM_TTL_S,
        auto_compact_ratio=auto_compact_ratio,
    )


def _make_executor(args: argparse.Namespace, jobs: int | None = None):
    """Runner for sweep cells: cache-backed service or plain pool."""
    from repro.service import ExplorationService

    if getattr(args, "cache", None) is not None:
        return ExplorationService(
            store=_make_store(args), jobs=jobs or getattr(args, "jobs", 1)
        )
    return ParallelSweepRunner(jobs=jobs or getattr(args, "jobs", 1))


def _assigner_spec(args: argparse.Namespace):
    """The :class:`AssignerSpec` described by --assigner/--budget/... flags."""
    from repro.search import AssignerSpec

    return AssignerSpec(
        name=getattr(args, "assigner", "greedy"),
        budget=getattr(args, "budget", None) or AssignerSpec().budget,
        seed=getattr(args, "search_seed", 0),
        budget_seconds=getattr(args, "budget_seconds", None),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    assigner = _assigner_spec(args)
    if args.cache is not None:
        cell = SweepCell(
            app=args.app,
            platform=PlatformSpec(
                l1_bytes=kib(args.l1_kib), l2_bytes=kib(args.l2_kib)
            ),
            objective=Objective.EDP,
            assigner=assigner,
        )
        result = _make_executor(args).run((cell,))[0].require()
    else:
        program = build_app(args.app)
        platform = embedded_3layer(
            l1_bytes=kib(args.l1_kib), l2_bytes=kib(args.l2_kib)
        )
        result = Mhla(program, platform, assigner=assigner).explore()
    print(scenario_table([result]))
    print()
    print(f"MHLA speedup:        {result.mhla_speedup_fraction:.1%}")
    print(f"TE extra speedup:    {result.te_speedup_fraction:.1%}")
    print(f"Energy reduction:    {result.energy_reduction_fraction:.1%}")
    te = result.scenario("mhla_te").te
    if te is not None:
        print(te.summary())
    trace = result.scenario("mhla").trace
    if trace is not None and trace.stats is not None:
        print(trace.stats.summary())
    return 0


def _suite_results(l1_kib: float, l2_kib: float):
    platform = embedded_3layer(l1_bytes=kib(l1_kib), l2_bytes=kib(l2_kib))
    return [Mhla(build_app(name), platform).explore() for name in all_app_names()]


def _cmd_fig2(args: argparse.Namespace) -> int:
    results = _suite_results(args.l1_kib, args.l2_kib)
    print("Figure 2 — execution cycles, normalised per app (oob = 100%):\n")
    groups = {
        result.app_name: result.cycles_by_scenario() for result in results
    }
    print(grouped_bar_chart(groups, SCENARIO_ORDER))
    print()
    print(scenario_table(results))
    print()
    print(search_stats_table(results))
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    results = _suite_results(args.l1_kib, args.l2_kib)
    print("Figure 3 — energy, normalised per app (oob = 100%):\n")
    groups = {
        result.app_name: {
            "oob": result.scenario("oob").energy_nj,
            "mhla": result.scenario("mhla").energy_nj,
            "mhla_te": result.scenario("mhla_te").energy_nj,
        }
        for result in results
    }
    print(grouped_bar_chart(groups, ("oob", "mhla", "mhla_te")))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    executor = _make_executor(args)
    assigner = _assigner_spec(args)
    if args.synthetic is not None:
        if args.app is not None:
            print(
                "error: pass either APP or --synthetic N, not both",
                file=sys.stderr,
            )
            return 2
        outcomes = executor.run(
            synthetic_grid(args.synthetic, seed=args.seed, assigner=assigner)
        )
        print(
            f"Scenario grid — {args.synthetic} generated app(s) "
            f"(seed {args.seed}) x platform:\n"
        )
        print(grid_table(outcomes))
        return 0 if all(outcome.ok for outcome in outcomes) else 1
    if args.app is None:
        # Grid mode: every app x platform x objective.
        outcomes = executor.run(full_grid(assigner=assigner))
        print("Scenario grid — app x platform x objective:\n")
        print(grid_table(outcomes))
        return 0 if all(outcome.ok for outcome in outcomes) else 1

    # L1-size trade-off sweep for one application (TAB-TRADEOFF).
    sizes = [kib(size) for size in (0.5, 1, 2, 4, 8, 16, 32, 64)]
    cells = tuple(
        SweepCell(
            app=args.app,
            platform=PlatformSpec(
                l1_bytes=size, l2_bytes=default_l2_bytes(size)
            ),
            objective=Objective.EDP,
            assigner=assigner,
        )
        for size in sizes
    )
    results = [outcome.require() for outcome in executor.run(cells)]
    points = tuple(
        TradeoffPoint(
            l1_bytes=cell.platform.l1_bytes,
            cycles=result.scenario("mhla").cycles,
            energy_nj=result.scenario("mhla").energy_nj,
            te_cycles=result.scenario("mhla_te").cycles,
            copies=result.scenario("mhla").assignment.copy_count(),
            result=result,
        )
        for cell, result in zip(cells, results)
    )
    print(sweep_table(points))
    front = pareto_front(points, key=lambda p: (p.cycles, p.energy_nj, p.l1_bytes))
    labels = ", ".join(fmt_bytes(point.l1_bytes) for point in front)
    print(f"\nPareto-optimal L1 sizes (cycles, energy, size): {labels}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Race a search engine against the greedy baseline on one app."""
    from repro.analysis.report import format_table
    from repro.core.assignment import GreedyAssigner
    from repro.core.context import AnalysisContext
    from repro.core.incremental import IncrementalEvaluator
    from repro.search import PortfolioRunner, build_assigner

    program = build_app(args.app)
    # Built through the picklable recipe so a parallel portfolio race
    # hands workers exactly the platform this process analyses.
    platform_spec = PlatformSpec(
        l1_bytes=kib(args.l1_kib), l2_bytes=kib(args.l2_kib)
    )
    platform = platform_spec.build()
    objective = Objective(args.objective)
    ctx = AnalysisContext(program, platform)
    evaluator = IncrementalEvaluator(ctx)
    import time as _time

    started = _time.perf_counter()
    _greedy_assignment, greedy_trace = GreedyAssigner(
        ctx, objective=objective, evaluator=evaluator
    ).run()
    greedy_s = _time.perf_counter() - started
    greedy_value = greedy_trace.final_value

    spec = _assigner_spec(args)
    engine = build_assigner(
        ctx,
        objective=objective,
        spec=spec,
        evaluator=evaluator,
        jobs=getattr(args, "jobs", 1),
        race_recipe=(args.app, platform_spec),
    )
    started = _time.perf_counter()
    assignment, trace = engine.run()
    engine_s = _time.perf_counter() - started

    def gain(value: float) -> str:
        if greedy_value == 0:
            return "-"
        return f"{(greedy_value - value) / greedy_value:+.2%}"

    rows = [
        ["greedy", f"{greedy_value:.6g}", "+0.00%", "-",
         f"{greedy_s * 1e3:.1f}", ""],
    ]
    if isinstance(engine, PortfolioRunner):
        for outcome in engine.outcomes:
            rows.append(
                [
                    outcome.strategy,
                    f"{outcome.value:.6g}",
                    gain(outcome.value),
                    str(outcome.nodes),
                    f"{outcome.wall_time_s * 1e3:.1f}",
                    "winner" if outcome.winner else "",
                ]
            )
    else:
        nodes = getattr(engine, "budget", None)
        rows.append(
            [
                spec.name,
                f"{trace.final_value:.6g}",
                gain(trace.final_value),
                str(nodes.used) if nodes is not None else "-",
                f"{engine_s * 1e3:.1f}",
                "winner" if trace.final_value < greedy_value else "",
            ]
        )
    print(
        f"Assigner race — {args.app} on {platform.name}, "
        f"objective {objective.value}, budget {spec.budget}, "
        f"seed {spec.seed}:\n"
    )
    print(format_table(
        ["strategy", "value", "vs greedy", "nodes", "time ms", ""], rows
    ))
    print()
    print(
        f"result: {trace.strategy} at {trace.final_value:.6g} "
        f"({assignment.copy_count()} copies), "
        f"{gain(trace.final_value)} vs greedy"
    )
    if trace.stats is not None:
        print(trace.stats.summary())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    program = build_app(args.app)
    platform = embedded_3layer(l1_bytes=kib(args.l1_kib), l2_bytes=kib(args.l2_kib))
    tool = Mhla(program, platform)
    result = tool.explore()
    print(f"{'scenario':10s} {'estimated':>14s} {'simulated':>14s} {'error':>8s}")
    for name in ("mhla", "mhla_te"):
        scenario = result.scenario(name)
        stats = simulate(tool.ctx, scenario.assignment, scenario.te)
        error = relative_error(stats.cycles, scenario.cycles)
        print(
            f"{name:10s} {scenario.cycles:>14,.0f} {stats.cycles:>14,.0f} "
            f"{error:>8.2%}"
        )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import pathlib

    from repro.synth.spec import case_to_json
    from repro.verify import CHECK_NAMES, DifferentialHarness, fuzz

    checks = tuple(args.checks) if args.checks else CHECK_NAMES
    assigner = _assigner_spec(args)
    harness = DifferentialHarness(
        checks=checks,
        sim_tolerance=args.sim_tolerance,
        te_sim_tolerance=args.te_sim_tolerance,
        assigner=assigner,
    )
    skip_case = on_clean = None
    if args.cache is not None:
        from repro.service import KIND_FUZZ_VERDICT, fuzz_verdict_key

        store = _make_store(args)
        # sorted: `--checks incremental oracle` and `--checks oracle
        # incremental` run the same harness and must share verdicts
        harness_config = {
            "checks": sorted(checks),
            "sim_tolerance": args.sim_tolerance,
            "te_sim_tolerance": args.te_sim_tolerance,
            "assigner": assigner.payload(),
        }

        def skip_case(spec):
            verdict = store.get(
                fuzz_verdict_key(spec, harness_config), KIND_FUZZ_VERDICT
            )
            return verdict is not None and verdict.get("ok") is True

        def on_clean(spec):
            store.put(
                fuzz_verdict_key(spec, harness_config),
                KIND_FUZZ_VERDICT,
                {"ok": True, "checks": list(checks)},
            )

    report = fuzz(
        args.seed,
        args.cases,
        harness=harness,
        shrink=not args.no_shrink,
        skip_case=skip_case,
        on_clean=on_clean,
    )
    print(report.summary())
    if report.ok:
        print("all cases verified clean")
        return 0

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    for failure in report.failures:
        case = failure.shrunk
        path = out_dir / f"reproducer_{case.seed}.json"
        path.write_text(case_to_json(case))
        checks_failed = ", ".join(
            result.check for result in failure.report.failures
        )
        print(f"\ncase seed {case.seed} failed [{checks_failed}]")
        for result in failure.shrunk_report.failures:
            print(f"  {result.check}: {result.detail}")
        print(f"  shrunk reproducer: {path}")
    print(
        f"\n{len(report.failures)} of {report.cases} cases failed; rerun one "
        "with: repro fuzz --seed <case seed> --cases 1"
    )
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.service import ExplorationService, serve

    if args.listen is not None and args.socket is not None:
        raise ValidationError("pass --listen or --socket, not both")
    service = ExplorationService(
        store=_make_store(args, auto_compact_ratio=SERVE_AUTO_COMPACT_RATIO),
        jobs=args.jobs,
    )
    assigner = _assigner_spec(args)
    if args.listen is None and args.socket is None:
        return serve(service, sys.stdin, sys.stdout, default_assigner=assigner)

    from repro.service import (
        AsyncExplorationServer,
        ExplorationServer,
        parse_listen_address,
        serve_until_signalled,
    )
    from repro.service.server import DEFAULT_MAX_PENDING

    server_cls = (
        ExplorationServer if args.transport == "threads"
        else AsyncExplorationServer
    )
    server = server_cls(
        service,
        listen=(
            parse_listen_address(args.listen)
            if args.listen is not None
            else None
        ),
        socket_path=args.socket,
        default_assigner=assigner,
        max_pending=(
            args.max_pending
            if args.max_pending is not None
            else DEFAULT_MAX_PENDING
        ),
    )
    address = server.address
    if isinstance(address, tuple):
        address = f"{address[0]}:{address[1]}"
    # announced on stdout so scripts can discover an ephemeral port
    print(f"listening on {address}", flush=True)
    return serve_until_signalled(server)


def _cmd_call(args: argparse.Namespace) -> int:
    """One-shot request against a running socket server."""
    import json

    from repro.errors import ValidationError
    from repro.service import ServiceClient, parse_listen_address

    if (args.connect is None) == (args.socket is None):
        raise ValidationError("pass exactly one of --connect or --socket")
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as error:
            raise ValidationError(f"--params is not JSON: {error}") from None
        if not isinstance(params, dict):
            raise ValidationError("--params must be a JSON object")
    else:
        params = None
    address = (
        parse_listen_address(args.connect)
        if args.connect is not None
        else args.socket
    )
    with ServiceClient(
        address, timeout=args.timeout, retry_busy=args.retry_busy
    ) as client:
        response = client.request(args.method, params)
    result = response.get("result")
    if (
        args.method == "metrics"
        and isinstance(result, dict)
        and isinstance(result.get("text"), str)
    ):
        # raw Prometheus text, scrape-ready — not wrapped in JSON
        print(result["text"], end="")
        return 0
    print(json.dumps(response, separators=(",", ":")))
    return 0 if "error" not in response else 1


def _open_cache_dir(path_text: str):
    """ResultStore over an existing cache directory, or None + stderr.

    A typo'd path must error, not report a healthy empty cache (or,
    worse, be created as a side effect of compaction).
    """
    import pathlib

    from repro.service import ResultStore

    if not pathlib.Path(path_text).is_dir():
        print(f"error: no such cache directory: {path_text}", file=sys.stderr)
        return None
    return ResultStore(path_text)


def _print_kind_counts(by_kind: dict) -> None:
    for kind, count in by_kind.items():
        print(f"  {kind + ':':20s}{count}")


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _open_cache_dir(args.dir)
    if store is None:
        return 2
    stats = store.stats()
    if args.json:
        import json

        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    limits = stats["limits"]
    print(f"{'backend:':21s}{stats['backend']}")
    print(f"{'sealed segments:':21s}{stats['sealed_segments']}")
    print(f"{'file bytes:':21s}{stats['file_bytes']}")
    print(f"{'active bytes:':21s}{stats['active_bytes']}")
    print(f"{'live records:':21s}{stats['live_records']}")
    print(f"{'live bytes:':21s}{stats['live_bytes']}")
    _print_kind_counts(stats["live_by_kind"])
    print(f"{'live claims:':21s}{stats['live_claims']}")
    print(f"{'corrupt lines:':21s}{stats['corrupt_lines']}")
    print(f"{'unrecognised lines:':21s}{stats['unrecognised_lines']}")
    print(
        f"{'segment max bytes:':21s}{limits['segment_max_bytes']}"
    )
    return 0


def _cmd_cache_compact(args: argparse.Namespace) -> int:
    store = _open_cache_dir(args.dir)
    if store is None:
        return 2
    report = store.compact()
    print(f"{'segments removed:':21s}{report['segments_removed']}")
    print(f"{'records written:':21s}{report['records_written']}")
    print(f"{'bytes before:':21s}{report['bytes_before']}")
    print(f"{'bytes after:':21s}{report['bytes_after']}")
    print(f"{'bytes reclaimed:':21s}{report['bytes_reclaimed']}")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    if args.max_bytes is None and args.max_entries is None:
        print(
            "error: repro cache gc needs --max-bytes and/or --max-entries",
            file=sys.stderr,
        )
        return 2
    store = _open_cache_dir(args.dir)
    if store is None:
        return 2
    report = store.gc(max_bytes=args.max_bytes, max_records=args.max_entries)
    print(f"{'evicted:':21s}{report['evicted']}")
    print(f"{'claims pruned:':21s}{report['claims_pruned']}")
    print(f"{'live records:':21s}{report['live_records']}")
    print(f"{'live bytes:':21s}{report['live_bytes']}")
    if args.compact:
        compacted = store.compact()
        print(f"{'bytes reclaimed:':21s}{compacted['bytes_reclaimed']}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    store = _open_cache_dir(args.dir)
    if store is None:
        return 2
    report = store.verify(deep=args.deep)
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    for counts in report["files"]:
        print(
            f"{counts['file']}: {counts['lines']} line(s) = "
            f"{counts['records']} record(s), {counts['touches']} touch(es), "
            f"{counts['tombstones']} tombstone(s), "
            f"{counts['compactions']} compaction(s), "
            f"{counts['claims']} claim(s), "
            f"{counts['releases']} release(s), "
            f"{counts['corrupt']} corrupt, "
            f"{counts['unrecognised']} unrecognised"
        )
    print(f"{'live records:':21s}{report['live_records']}")
    _print_kind_counts(report["live_by_kind"])
    print(f"{'live claims:':21s}{report['live_claims']}")
    print(f"{'suspect keys:':21s}{report['suspect_keys']}")
    damaged = report["corrupt_lines"] + report["unrecognised_lines"]
    print(f"{'damaged lines:':21s}{damaged}")
    for entry in report["damage"]:
        print(f"  {entry['file']}:{entry['line']} {entry['reason']}")
    if args.deep:
        print(f"{'deep-checked:':21s}{report['deep_checked']}")
        for failure in report["deep_failures"]:
            print(f"  {failure['key']}: {failure['error']}")
    if report["ok"]:
        print(
            f"store is consistent: {report['live_records']} live record(s), "
            "0 damaged line(s)"
        )
        return 0
    problems = [f"{damaged} damaged line(s)"]
    if report["suspect_keys"]:
        problems.append(f"{report['suspect_keys']} suspect key(s)")
    if report["deep_failures"]:
        problems.append(f"{len(report['deep_failures'])} unreadable result(s)")
    if not report["matches_memory"]:  # pragma: no cover - load/replay invariant
        problems.append("disk view diverges from loaded index")
    print(f"store is INCONSISTENT ({', '.join(problems)})")
    return 1


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    from repro.obs.tail import tail_trace_log

    return tail_trace_log(
        args.file, sys.stdout, follow=args.follow, trace_id=args.trace_id
    )


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.ir.pretty import format_candidates, format_program

    program = build_app(args.app)
    platform = embedded_3layer(
        l1_bytes=kib(args.l1_kib), l2_bytes=kib(args.l2_kib)
    )
    print(format_program(program))
    print()
    print(format_candidates(program, platform))
    return 0


def _positive_int(text: str) -> int:
    """argparse type for bounds: a typo like ``-1`` or ``0`` must fail
    at parse time, not wipe a cache at eviction time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for retry counts: 0 (fail fast) is legitimate."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    """argparse type for durations: zero/negative cut-offs fail at
    parse time instead of aborting the search before its first node."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if not value > 0:
        raise argparse.ArgumentTypeError("must be a positive number")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MHLA with Time Extensions (DATE 2005) exploration tool",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the nine applications").set_defaults(
        func=_cmd_list
    )

    def add_platform_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--l1-kib", type=float, default=8.0, help="L1 size in KiB")
        p.add_argument("--l2-kib", type=float, default=64.0, help="L2 size in KiB")

    def add_assigner_args(
        p: argparse.ArgumentParser, default: str = "greedy"
    ) -> None:
        from repro.search import DEFAULT_BUDGET, ASSIGNER_NAMES

        p.add_argument(
            "--assigner",
            choices=ASSIGNER_NAMES,
            default=default,
            help="step-1 search engine: the paper's greedy (default), a "
            "metaheuristic, or the portfolio racing all of them "
            f"(default: {default})",
        )
        p.add_argument(
            "--budget",
            type=_positive_int,
            default=DEFAULT_BUDGET,
            metavar="N",
            help="metaheuristic node budget: candidate moves the engine "
            f"may score (default: {DEFAULT_BUDGET}; ignored by greedy)",
        )
        p.add_argument(
            "--search-seed",
            type=int,
            default=0,
            metavar="S",
            help="metaheuristic RNG seed; a fixed seed makes the search "
            "byte-for-byte deterministic (default: 0)",
        )
        p.add_argument(
            "--budget-seconds",
            type=_positive_float,
            default=None,
            metavar="T",
            help="wall-clock cut-off in seconds, composing with --budget "
            "(whichever trips first stops the search; results stay "
            "anytime-valid but machine-dependent; ignored by greedy)",
        )

    def add_obs_args(
        p: argparse.ArgumentParser, profile: bool = False
    ) -> None:
        p.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error"),
            default=None,
            help="stderr log verbosity for the repro logger tree "
            "(default: warning)",
        )
        p.add_argument(
            "--log-json",
            action="store_true",
            help="emit log records as JSON lines instead of plain text",
        )
        p.add_argument(
            "--trace-log",
            default=None,
            metavar="FILE",
            help="append JSON-lines span events to FILE; safe to share "
            "one file across every process of a fleet (atomic "
            "appends), correlated by the client-minted trace_id; "
            "inherited by spawned workers via REPRO_TRACE_LOG",
        )
        p.add_argument(
            "--slow-ms",
            type=_positive_float,
            default=None,
            metavar="T",
            help="spans slower than T milliseconds additionally emit a "
            "slow_request dump into the trace log",
        )
        if profile:
            p.add_argument(
                "--profile",
                default=None,
                metavar="DIR",
                help="wrap each cell evaluation in cProfile and write "
                "DIR/<key>.pstats, one artifact per unique cell "
                "(inherited by spawned workers via REPRO_PROFILE_DIR)",
            )

    def add_cache_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="content-addressed result cache directory; warm re-runs "
            "serve memoized results without re-evaluating",
        )
        p.add_argument(
            "--cache-max-bytes",
            type=_positive_int,
            default=None,
            metavar="N",
            help="evict least-recently-used cache records once the live "
            "records exceed N bytes (default: unbounded)",
        )
        p.add_argument(
            "--cache-max-entries",
            type=_positive_int,
            default=None,
            metavar="N",
            help="evict least-recently-used cache records once more than "
            "N keys are live (default: unbounded)",
        )
        from repro.service.store import DEFAULT_CLAIM_TTL_S

        p.add_argument(
            "--claim-ttl",
            type=_positive_float,
            default=None,
            metavar="T",
            help="lease duration (seconds) of in-flight claims written "
            "to a shared cache directory; siblings take an expired "
            "claim over instead of waiting forever (default: "
            f"{DEFAULT_CLAIM_TTL_S:g})",
        )

    run = sub.add_parser("run", help="four scenarios for one application")
    run.add_argument("app", choices=all_app_names())
    add_platform_args(run)
    add_assigner_args(run)
    add_cache_arg(run)
    add_obs_args(run, profile=True)
    run.set_defaults(func=_cmd_run)

    search = sub.add_parser(
        "search",
        help="race a metaheuristic assigner (or the whole portfolio) "
        "against the greedy engine on one application",
    )
    search.add_argument("app", choices=all_app_names())
    add_platform_args(search)
    search.add_argument(
        "--objective",
        choices=tuple(objective.value for objective in Objective),
        default=Objective.EDP.value,
        help="search objective (default: edp)",
    )
    add_assigner_args(search, default="portfolio")
    search.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes racing the portfolio members (1 = "
        "sequential; winner and attribution are byte-identical "
        "regardless)",
    )
    add_obs_args(search)
    search.set_defaults(func=_cmd_search)

    fig2 = sub.add_parser("fig2", help="Figure 2 (performance) for the suite")
    add_platform_args(fig2)
    fig2.set_defaults(func=_cmd_fig2)

    fig3 = sub.add_parser("fig3", help="Figure 3 (energy) for the suite")
    add_platform_args(fig3)
    fig3.set_defaults(func=_cmd_fig3)

    sweep = sub.add_parser(
        "sweep",
        help="L1 size trade-off sweep (with APP) or the full "
        "app x platform x objective grid (without)",
    )
    sweep.add_argument("app", nargs="?", default=None, choices=all_app_names())
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial; output is "
        "identical regardless)",
    )
    sweep.add_argument(
        "--synthetic",
        type=int,
        default=None,
        metavar="N",
        help="sweep over N generated applications instead of the "
        "bundled suite (mutually exclusive with APP)",
    )
    sweep.add_argument(
        "--seed",
        type=int,
        default=0,
        help="first case seed of the generated applications",
    )
    add_assigner_args(sweep)
    add_cache_arg(sweep)
    add_obs_args(sweep, profile=True)
    sweep.set_defaults(func=_cmd_sweep)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential verification on generated cases: cross-check "
        "the estimator, incremental engine, exhaustive oracle, "
        "metaheuristic assigners and simulator; shrink failures to "
        "minimal reproducers",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0, help="run seed (case 0 uses it verbatim)"
    )
    fuzz_cmd.add_argument(
        "--cases", type=int, default=50, help="number of generated cases"
    )
    fuzz_cmd.add_argument(
        "--checks",
        nargs="+",
        choices=("incremental", "oracle", "metaheuristic", "simulation", "te"),
        default=None,
        help="subset of checks to run (default: all five)",
    )
    fuzz_cmd.add_argument(
        "--sim-tolerance",
        type=float,
        default=0.10,
        help="allowed estimator-vs-simulator gap for the mhla scenario",
    )
    fuzz_cmd.add_argument(
        "--te-sim-tolerance",
        type=float,
        default=0.60,
        help="allowed estimator optimism for the mhla_te scenario",
    )
    fuzz_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="keep failing cases as generated (skip minimisation)",
    )
    fuzz_cmd.add_argument(
        "--out",
        default="fuzz-failures",
        help="directory for shrunk reproducer JSON files",
    )
    add_assigner_args(fuzz_cmd, default="portfolio")
    add_cache_arg(fuzz_cmd)
    add_obs_args(fuzz_cmd)
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    serve_cmd = sub.add_parser(
        "serve",
        help="JSON-RPC exploration service over stdin/stdout, a TCP "
        "socket (--listen) or a unix socket (--socket)",
    )
    add_assigner_args(serve_cmd)
    add_cache_arg(serve_cmd)
    serve_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for batch evaluation",
    )
    serve_cmd.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the same protocol over TCP to many concurrent "
        "clients (port 0 picks an ephemeral port, announced on stdout)",
    )
    serve_cmd.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="serve over a unix domain socket at PATH instead of TCP",
    )
    serve_cmd.add_argument(
        "--max-pending",
        type=_positive_int,
        default=None,
        metavar="N",
        help="socket mode: cap on requests in flight across all "
        "connections; excess requests get a busy error (default: 64)",
    )
    serve_cmd.add_argument(
        "--transport",
        choices=("async", "threads"),
        default="async",
        help="socket mode: multiplexed event-loop transport (async, "
        "the default: one loop for all connections, responses out of "
        "order so slow requests never block fast ones) or the "
        "thread-per-connection serialized reference (threads)",
    )
    add_obs_args(serve_cmd, profile=True)
    serve_cmd.set_defaults(func=_cmd_serve)

    call = sub.add_parser(
        "call",
        help="one-shot JSON-RPC request against a running socket server",
    )
    call.add_argument("method", help="RPC method name (e.g. stats, submit)")
    call.add_argument(
        "--params",
        default=None,
        metavar="JSON",
        help="request params as a JSON object",
    )
    call.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="TCP server address (from `repro serve --listen`)",
    )
    call.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix socket path (from `repro serve --socket`)",
    )
    call.add_argument(
        "--timeout",
        type=_positive_float,
        default=60.0,
        metavar="T",
        help="seconds to wait for the response (default: 60)",
    )
    call.add_argument(
        "--retry-busy",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="retry up to N times (capped jittered backoff) when the "
        "server answers busy (-32001) under admission control or "
        "refuses the connection while still starting up "
        "(default: 0, fail fast)",
    )
    add_obs_args(call)
    call.set_defaults(func=_cmd_call)

    cache = sub.add_parser(
        "cache",
        help="inspect and maintain a result cache directory "
        "(stats/compact/gc/verify)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats", help="occupancy, segment layout and damage counters"
    )
    cache_stats.add_argument("dir", metavar="DIR", help="cache directory")
    cache_stats.add_argument(
        "--json", action="store_true",
        help="emit the full stats report as JSON (stable key order)",
    )
    cache_stats.set_defaults(func=_cmd_cache_stats)

    cache_compact = cache_sub.add_parser(
        "compact",
        help="rewrite live records into one fresh segment (crash-safe, "
        "offline; reclaims tombstoned/stale/damaged bytes)",
    )
    cache_compact.add_argument("dir", metavar="DIR", help="cache directory")
    cache_compact.set_defaults(func=_cmd_cache_compact)

    cache_gc = cache_sub.add_parser(
        "gc",
        help="evict least-recently-used records down to the given bounds",
    )
    cache_gc.add_argument("dir", metavar="DIR", help="cache directory")
    cache_gc.add_argument(
        "--max-bytes", type=_positive_int, default=None, metavar="N",
        help="evict until live records fit in N bytes",
    )
    cache_gc.add_argument(
        "--max-entries", type=_positive_int, default=None, metavar="N",
        help="evict until at most N keys are live",
    )
    cache_gc.add_argument(
        "--compact", action="store_true",
        help="also compact afterwards to reclaim the bytes on disk",
    )
    cache_gc.set_defaults(func=_cmd_cache_gc)

    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-scan every segment; report corrupt/unrecognised lines "
        "and suspect keys (exit 1 if any)",
    )
    cache_verify.add_argument("dir", metavar="DIR", help="cache directory")
    cache_verify.add_argument(
        "--deep", action="store_true",
        help="also rebuild every stored exploration result",
    )
    cache_verify.add_argument(
        "--json", action="store_true",
        help="emit the full verification report as JSON (stable key "
        "order); exit code still reflects consistency",
    )
    cache_verify.set_defaults(func=_cmd_cache_verify)

    obs_cmd = sub.add_parser(
        "obs",
        help="observability helpers (tail a trace log)",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_tail = obs_sub.add_parser(
        "tail",
        help="pretty-print a --trace-log file (optionally follow it)",
    )
    obs_tail.add_argument("file", metavar="FILE", help="trace log path")
    obs_tail.add_argument(
        "--follow", action="store_true",
        help="keep polling for appended events (tail -f style)",
    )
    obs_tail.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="only show events of one trace id",
    )
    obs_tail.set_defaults(func=_cmd_obs_tail)

    simulate_cmd = sub.add_parser(
        "simulate", help="validate estimator against the simulator"
    )
    simulate_cmd.add_argument("app", choices=all_app_names())
    add_platform_args(simulate_cmd)
    simulate_cmd.set_defaults(func=_cmd_simulate)

    show = sub.add_parser(
        "show", help="print program structure and copy candidates"
    )
    show.add_argument("app", choices=all_app_names())
    add_platform_args(show)
    show.set_defaults(func=_cmd_show)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Exit codes are uniform: 2 for user errors (argparse already exits
    2 for bad flags; :class:`ValidationError` covers bad specs, bad
    case files and misconfigured requests), 1 for internal failures
    (any other :class:`ReproError` escaping a sub-command), 0 for
    success.
    """
    from repro.errors import ReproError, ValidationError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _configure_obs(args)
        return args.func(args)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
