"""Full-search motion estimation (video encoding domain).

The canonical data-reuse showcase of the DTSE literature and the
motivating kernel of the paper's domain: for every 16x16 macroblock of
the current frame, a +/-8 full search compares against a 31x31-pixel
region of the previous frame.  The reference-window access is a
textbook *sliding window*: consecutive macroblocks share most of their
search region, so a copy kept on-chip only needs a 16-pixel-wide strip
of new data per macroblock step — exactly the delta-transfer behaviour
:mod:`repro.reuse` models.

Reuse structure exercised:

* ``cur`` block copy at the macroblock level (re-read once per search
  candidate: ~289x reuse);
* ``prev`` search-window copy chain (window at L2 or L1, candidate
  block deeper) with delta fills;
* tiny ``mv`` output stream.

Per-pixel SAD work (subtract, absolute, accumulate, addressing, loop
overhead on a single-issue embedded core) is charged on the candidate
loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class MotionEstimationParams:
    """Workload knobs with literature-typical defaults."""

    frames: int = 2
    frame: FrameFormat = CIF
    block: int = 16
    search: int = 8
    sad_cycles_per_pixel: int = 10

    def __post_init__(self) -> None:
        require_positive(
            frames=self.frames,
            block=self.block,
            search=self.search,
            sad_cycles_per_pixel=self.sad_cycles_per_pixel,
        )
        self.frame.blocks(self.block)  # validates divisibility


def build(params: MotionEstimationParams | None = None) -> Program:
    """Build the full-search motion-estimation program."""
    p = params or MotionEstimationParams()
    rows, cols = p.frame.blocks(p.block)
    candidates = 2 * p.search + 1
    pixels = p.block * p.block

    b = ProgramBuilder("motion_estimation")
    video = b.array(
        "video",
        (p.frames + 1, p.frame.height, p.frame.width),
        element_bytes=1,
        kind="input",
    )
    mv = b.array("mv", (p.frames, rows, cols), element_bytes=4, kind="output")

    with b.loop("me_f", p.frames):
        with b.loop("me_by", rows):
            with b.loop("me_bx", cols, work=candidates):
                with b.loop("me_cy", candidates):
                    with b.loop(
                        "me_cx", candidates, work=pixels * p.sad_cycles_per_pixel
                    ):
                        # current macroblock: re-read for every candidate
                        b.read(
                            video,
                            dim(("me_f", 1), offset=1),
                            dim(("me_by", p.block), extent=p.block),
                            dim(("me_bx", p.block), extent=p.block),
                            count=pixels,
                            label="cur_block",
                        )
                        # reference search window of the previous frame
                        b.read(
                            video,
                            dim(("me_f", 1)),
                            dim(
                                ("me_by", p.block),
                                ("me_cy", 1),
                                extent=p.block,
                                offset=-p.search,
                            ),
                            dim(
                                ("me_bx", p.block),
                                ("me_cx", 1),
                                extent=p.block,
                                offset=-p.search,
                            ),
                            count=pixels,
                            label="ref_window",
                        )
                b.write(
                    mv,
                    dim(("me_f", 1)),
                    dim(("me_by", 1)),
                    dim(("me_bx", 1)),
                    count=1,
                    label="best_mv",
                )
    return b.build()
