"""JPEG-style encoder core: 8x8 DCT, quantisation, zig-zag, Huffman.

Image-compression kernel with four sequential nests and — unlike the
window-filter apps — two *small constant tables* whose reuse dominates:
the DCT cosine table and the quantisation table are read once per
coefficient for the whole image.  The optimal placement is not a copy
chain but a **home move**: park the table on-chip for the program's
entire lifetime (the ``array_home`` decision of MHLA step 1).

The block-structured accesses (pixels read block by block) give copy
candidates at the block-row and block levels, and the stages' buffers
(``coef``, ``quant``) have staggered lifetimes for the in-place model.

The final Huffman nest is deliberately *hostile* to copying: its VLC
table is indexed by coefficient value (data-dependent), modelled as a
16 KiB footprint per access — too large for L1, so those accesses keep
hitting a far layer whatever the assignment does.  Full industrial
applications always contain such code; it is why the paper's energy
gains saturate instead of approaching 100%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim, fixed
from repro.ir.program import Program


@dataclass(frozen=True)
class JpegDctParams:
    """Workload knobs with literature-typical defaults."""

    frame: FrameFormat = CIF
    block: int = 8
    dct_mac_cycles: int = 3  # per MAC; 16 MACs per coefficient (two passes)
    quant_cycles: int = 8
    scan_cycles: int = 5
    huffman_cycles: int = 14
    vlc_entries: int = 4096

    def __post_init__(self) -> None:
        require_positive(
            block=self.block,
            dct_mac_cycles=self.dct_mac_cycles,
            quant_cycles=self.quant_cycles,
            scan_cycles=self.scan_cycles,
            huffman_cycles=self.huffman_cycles,
            vlc_entries=self.vlc_entries,
        )
        self.frame.blocks(self.block)


def build(params: JpegDctParams | None = None) -> Program:
    """Build the three-nest JPEG encoder core."""
    p = params or JpegDctParams()
    rows, cols = p.frame.blocks(p.block)
    height, width = p.frame.height, p.frame.width
    n = p.block
    blocks = rows * cols

    b = ProgramBuilder("jpeg_dct")
    img = b.array("img", (height, width), element_bytes=1, kind="input")
    costab = b.array("costab", (n, n), element_bytes=4, kind="input")
    qtab = b.array("qtab", (n, n), element_bytes=4, kind="input")
    zztab = b.array("zztab", (n * n,), element_bytes=4, kind="input")
    vlctab = b.array("vlctab", (p.vlc_entries,), element_bytes=4, kind="input")
    coef = b.array("coef", (height, width), element_bytes=2, kind="internal")
    quant = b.array("quant", (height, width), element_bytes=2, kind="internal")
    codes = b.array("codes", (blocks, n * n), element_bytes=2, kind="internal")
    bits = b.array("bits", (blocks, n * n), element_bytes=2, kind="output")

    # Nest 1: 8x8 block DCT (row pass + column pass folded: each output
    # coefficient consumes 2*n MACs over the pixel block and cosine rows).
    with b.loop("jd_by", rows):
        with b.loop("jd_bx", cols):
            with b.loop("jd_u", n):
                with b.loop("jd_v", n, work=2 * n * p.dct_mac_cycles):
                    b.read(
                        img,
                        dim(("jd_by", n), ("jd_u", 1)),
                        dim(("jd_bx", n), ("jd_v", 1)),
                        count=2,
                        label="pixel_block",
                    )
                    b.read(
                        costab,
                        dim(("jd_u", 1)),
                        dim(("jd_v", 1)),
                        count=2 * n,
                        label="cosines",
                    )
                    b.write(
                        coef,
                        dim(("jd_by", n), ("jd_u", 1)),
                        dim(("jd_bx", n), ("jd_v", 1)),
                        count=1,
                    )

    # Nest 2: quantisation (coefficient-wise table divide).
    with b.loop("jq_by", rows):
        with b.loop("jq_bx", cols):
            with b.loop("jq_u", n):
                with b.loop("jq_v", n, work=p.quant_cycles):
                    b.read(
                        coef,
                        dim(("jq_by", n), ("jq_u", 1)),
                        dim(("jq_bx", n), ("jq_v", 1)),
                        count=1,
                    )
                    b.read(
                        qtab,
                        dim(("jq_u", 1)),
                        dim(("jq_v", 1)),
                        count=1,
                        label="quant_table",
                    )
                    b.write(
                        quant,
                        dim(("jq_by", n), ("jq_u", 1)),
                        dim(("jq_bx", n), ("jq_v", 1)),
                        count=1,
                    )

    # Nest 3: zig-zag scan into the code buffer.
    with b.loop("jz_by", rows):
        with b.loop("jz_bx", cols):
            with b.loop("jz_i", n * n, work=p.scan_cycles):
                b.read(zztab, dim(("jz_i", 1)), count=1, label="zigzag_index")
                b.read(
                    quant,
                    dim(("jz_by", n), extent=n),
                    dim(("jz_bx", n), extent=n),
                    count=1,
                    label="scan_block",
                )
                b.write(
                    codes,
                    dim(("jz_by", cols), ("jz_bx", 1)),
                    dim(("jz_i", 1)),
                    count=1,
                )

    # Nest 4: Huffman entropy coding — value-indexed VLC lookups that no
    # static copy can serve (data-dependent footprint).
    with b.loop("jh_by", rows):
        with b.loop("jh_bx", cols):
            with b.loop("jh_i", n * n, work=p.huffman_cycles):
                b.read(
                    codes,
                    dim(("jh_by", cols), ("jh_bx", 1)),
                    dim(("jh_i", 1)),
                    count=1,
                )
                b.read(
                    vlctab,
                    fixed(extent=p.vlc_entries),
                    count=2,
                    label="vlc_lookup",
                )
                b.write(
                    bits,
                    dim(("jh_by", cols), ("jh_bx", 1)),
                    dim(("jh_i", 1)),
                    count=1,
                )
    return b.build()
