"""The application suite.

The paper evaluates MHLA+TE on "nine real life applications of motion
estimation, video encoding, image and audio processing domain" (section
3).  The industrial codes themselves are proprietary (ATOMIUM inputs),
so this package provides nine loop-nest models of the same kernels,
with the reuse structure, loop depths, lifetimes and data volumes the
DTSE literature describes for this suite:

=====================  =====================================================
``motion_estimation``  full-search block matching, CIF (video encoding)
``qsdpcm``             quad-tree structured DPCM video codec, hierarchical ME
``mpeg4_mc``           MPEG-4 motion compensation + reconstruction
``cavity``             cavity detection, medical image processing chain
``wavelet``            2-level 2-D 5/3 wavelet transform (image compression)
``jpeg_dct``           8x8 block DCT + quantisation + entropy scan
``edge_detection``     Sobel + non-maximum suppression + hysteresis
``voice_coder``        GSM-style LPC speech coder front end (audio)
``filterbank``         32-band pseudo-QMF analysis filter bank (audio)
=====================  =====================================================

Every model is built through the public :class:`~repro.ir.ProgramBuilder`
API with documented, literature-typical parameters, and each module's
docstring states which paper claim the kernel's structure exercises
(sliding-window reuse, multi-nest lifetimes, streaming, table reuse...).

Use :func:`build_app` / :func:`all_app_names` for uniform access; the
benchmark harness iterates ``all_app_names()`` to regenerate the paper's
Figures 2 and 3.
"""

from repro.apps.registry import (
    APP_SUITE_VERSION,
    all_app_names,
    app_cache_payload,
    app_descriptions,
    build_all,
    build_app,
)

__all__ = [
    "APP_SUITE_VERSION",
    "all_app_names",
    "app_cache_payload",
    "app_descriptions",
    "build_all",
    "build_app",
]
