"""32-band pseudo-QMF analysis filter bank (audio processing domain).

The MPEG-audio-style subband front end: per 32-sample input hop, a
512-tap windowing of the sliding input history, partial-sum folding to
64 values, then matrixing with a 32x64 cosine table.

This kernel mixes all three placement archetypes in one nest:

* the **sliding input window** (512 samples advancing by 32) — a copy
  with a 16:1 reuse-to-transfer ratio and perfectly predictable delta
  fills, ideal for TE prefetching;
* **small internal state** (``z``, ``y``) that belongs on-chip wholesale;
* the **8 KiB matrixing table** — exactly the default L1 capacity, so
  the assignment engine must arbitrate between the table and the
  window buffers (at bigger L1 sweeps the table moves in; see the
  TAB-TRADEOFF experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class FilterbankParams:
    """Workload knobs with MPEG-audio-like defaults."""

    nblocks: int = 96
    taps: int = 512
    bands: int = 32
    hop: int = 32
    mac_cycles: int = 5

    def __post_init__(self) -> None:
        require_positive(
            nblocks=self.nblocks,
            taps=self.taps,
            bands=self.bands,
            hop=self.hop,
            mac_cycles=self.mac_cycles,
        )
        if self.taps % self.hop:
            raise ValueError("taps must be a multiple of hop")


def build(params: FilterbankParams | None = None) -> Program:
    """Build the single-nest, three-phase filter-bank program."""
    p = params or FilterbankParams()
    partials = p.taps // 8  # 64 partial sums for the classic 512/32 bank
    folds = p.taps // partials

    b = ProgramBuilder("filterbank")
    audio = b.array(
        "audio", (p.nblocks * p.hop + p.taps,), element_bytes=2, kind="input"
    )
    win = b.array("win", (p.taps,), element_bytes=4, kind="input")
    mtab = b.array("mtab", (p.bands, partials), element_bytes=4, kind="input")
    z = b.array("z", (p.taps,), element_bytes=4, kind="internal")
    y = b.array("y", (partials,), element_bytes=4, kind="internal")
    sb = b.array("sb", (p.nblocks, p.bands), element_bytes=4, kind="output")

    with b.loop("fb_bl", p.nblocks):
        # Phase 1: window the sliding 512-sample input history.
        with b.loop("fb_wz", p.taps, work=p.mac_cycles):
            b.read(
                audio,
                dim(("fb_bl", p.hop), ("fb_wz", 1)),
                count=1,
                label="input_window",
            )
            b.read(win, dim(("fb_wz", 1)), count=1, label="window_coeff")
            b.write(z, dim(("fb_wz", 1)), count=1)

        # Phase 2: fold the windowed samples into 64 partial sums.
        with b.loop("fb_py", partials):
            with b.loop("fb_pk", folds, work=p.mac_cycles):
                b.read(
                    z,
                    dim(("fb_py", 1), ("fb_pk", partials)),
                    count=1,
                    label="fold_read",
                )
            b.write(y, dim(("fb_py", 1)), count=1)

        # Phase 3: matrixing with the 32x64 cosine table.
        with b.loop("fb_mb", p.bands):
            with b.loop("fb_mj", partials, work=p.mac_cycles):
                b.read(
                    mtab,
                    dim(("fb_mb", 1)),
                    dim(("fb_mj", 1)),
                    count=1,
                    label="matrix_coeff",
                )
                b.read(y, dim(("fb_mj", 1)), count=1, label="partial_sum")
            b.write(sb, dim(("fb_bl", 1)), dim(("fb_mb", 1)), count=1)
    return b.build()
