"""Cavity detection — medical image processing chain.

A well-known DTSE benchmark: a pipeline of 2-D window filters over a
medical image (Gaussian blur, gradient/edge computation, histogram of
edge strengths, thresholded labelling).  Its defining property for MHLA
is the *pipeline of short-lived stage buffers*: ``blur`` is dead as
soon as nest 2 has consumed it, ``edge`` dies after nest 4 — so row
copies of different stages can share the same scratchpad bytes
(in-place), and the lifetime-aware occupancy check is what makes the
aggressive assignment feasible.

The histogram nest adds a data-dependent reference (``hist[edge[y][x]]``),
modelled conservatively as touching the whole 256-entry table — a small,
heavily reused array that the assignment engine prefers to *re-home*
on-chip instead of copying.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim, fixed
from repro.ir.program import Program


@dataclass(frozen=True)
class CavityParams:
    """Workload knobs with literature-typical defaults."""

    frame: FrameFormat = CIF
    window: int = 3
    blur_cycles: int = 14
    edge_cycles: int = 16
    label_cycles: int = 6

    def __post_init__(self) -> None:
        require_positive(
            window=self.window,
            blur_cycles=self.blur_cycles,
            edge_cycles=self.edge_cycles,
            label_cycles=self.label_cycles,
        )


def build(params: CavityParams | None = None) -> Program:
    """Build the four-nest cavity-detection program."""
    p = params or CavityParams()
    height, width = p.frame.height, p.frame.width
    taps = p.window * p.window

    b = ProgramBuilder("cavity")
    img = b.array("img", (height, width), element_bytes=1, kind="input")
    blur = b.array("blur", (height, width), element_bytes=1, kind="internal")
    edge = b.array("edge", (height, width), element_bytes=1, kind="internal")
    hist = b.array("hist", (256,), element_bytes=4, kind="internal")
    label = b.array("label", (height, width), element_bytes=1, kind="output")

    # Nest 1: Gaussian blur (window filter over the input image).
    with b.loop("cb_y", height):
        with b.loop("cb_x", width, work=p.blur_cycles):
            b.read(
                img,
                dim(("cb_y", 1), extent=p.window),
                dim(("cb_x", 1), extent=p.window),
                count=taps,
                label="blur_window",
            )
            b.write(blur, dim(("cb_y", 1)), dim(("cb_x", 1)), count=1)

    # Nest 2: gradient magnitude (edge strength).
    with b.loop("ce_y", height):
        with b.loop("ce_x", width, work=p.edge_cycles):
            b.read(
                blur,
                dim(("ce_y", 1), extent=p.window),
                dim(("ce_x", 1), extent=p.window),
                count=2 * taps,
                label="sobel_window",
            )
            b.write(edge, dim(("ce_y", 1)), dim(("ce_x", 1)), count=1)

    # Nest 3: histogram of edge strengths (data-dependent indexing).
    with b.loop("ch_y", height):
        with b.loop("ch_x", width, work=3):
            b.read(edge, dim(("ch_y", 1)), dim(("ch_x", 1)), count=1)
            b.write(hist, fixed(extent=256), count=1, label="hist_update")

    # Nest 4: adaptive threshold + labelling.
    with b.loop("cl_y", height):
        with b.loop("cl_x", width, work=p.label_cycles):
            b.read(edge, dim(("cl_y", 1)), dim(("cl_x", 1)), count=1)
            b.read(hist, fixed(extent=256), count=1, label="threshold_lookup")
            b.write(label, dim(("cl_y", 1)), dim(("cl_x", 1)), count=1)
    return b.build()
