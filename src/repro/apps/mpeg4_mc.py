"""MPEG-4 style motion compensation + reconstruction (video encoding).

The decoder-side counterpart of motion estimation: for each macroblock,
fetch a (block+1)^2 reference region (the extra row/column feeds
half-pel bilinear interpolation), add the dequantised residual and
write the reconstructed frame.

Compared to full-search ME this kernel has far less reuse per fetched
byte (each reference pixel is used ~4x, residual and recon exactly
once), so it probes the *streaming* end of the assignment trade-off:
copies win mostly through burst fills rather than through repeated
on-chip hits, and the TE step's prefetching is what removes the
remaining fill stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class Mpeg4McParams:
    """Workload knobs with literature-typical defaults."""

    frames: int = 3
    frame: FrameFormat = CIF
    block: int = 16
    interp_cycles_per_pixel: int = 12

    def __post_init__(self) -> None:
        require_positive(
            frames=self.frames,
            block=self.block,
            interp_cycles_per_pixel=self.interp_cycles_per_pixel,
        )
        self.frame.blocks(self.block)


def build(params: Mpeg4McParams | None = None) -> Program:
    """Build the motion-compensation program."""
    p = params or Mpeg4McParams()
    rows, cols = p.frame.blocks(p.block)

    b = ProgramBuilder("mpeg4_mc")
    ref = b.array(
        "ref",
        (p.frames, p.frame.height + p.block + 1, p.frame.width + p.block + 1),
        element_bytes=1,
        kind="input",
    )
    resid = b.array(
        "resid",
        (p.frames, p.frame.height, p.frame.width),
        element_bytes=2,
        kind="input",
    )
    recon = b.array(
        "recon",
        (p.frames, p.frame.height, p.frame.width),
        element_bytes=1,
        kind="output",
    )

    with b.loop("mc_f", p.frames):
        with b.loop("mc_by", rows):
            with b.loop("mc_bx", cols):
                with b.loop("mc_py", p.block):
                    with b.loop("mc_px", p.block, work=p.interp_cycles_per_pixel):
                        # 2x2 neighbourhood for half-pel bilinear interpolation
                        b.read(
                            ref,
                            dim(("mc_f", 1)),
                            dim(("mc_by", p.block), ("mc_py", 1), extent=2),
                            dim(("mc_bx", p.block), ("mc_px", 1), extent=2),
                            count=4,
                            label="ref_quad",
                        )
                        b.read(
                            resid,
                            dim(("mc_f", 1)),
                            dim(("mc_by", p.block), ("mc_py", 1)),
                            dim(("mc_bx", p.block), ("mc_px", 1)),
                            count=1,
                            label="residual",
                        )
                        b.write(
                            recon,
                            dim(("mc_f", 1)),
                            dim(("mc_by", p.block), ("mc_py", 1)),
                            dim(("mc_bx", p.block), ("mc_px", 1)),
                            count=1,
                            label="recon_pixel",
                        )
    return b.build()
