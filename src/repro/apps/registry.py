"""Uniform access to the nine-application suite.

The benchmark harness, CLI and examples address applications by name;
this registry is the single source of truth for which applications
exist and how to build them with default parameters.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValidationError
from repro.ir.program import Program

from repro.apps import (
    cavity,
    edge_detection,
    filterbank,
    jpeg_dct,
    motion_estimation,
    mpeg4_mc,
    qsdpcm,
    voice_coder,
    wavelet,
)

_REGISTRY: dict[str, tuple[Callable[[], Program], str]] = {
    "motion_estimation": (
        motion_estimation.build,
        "full-search block motion estimation, CIF, +/-8 (video encoding)",
    ),
    "qsdpcm": (
        qsdpcm.build,
        "quad-tree structured DPCM codec with hierarchical ME (video encoding)",
    ),
    "mpeg4_mc": (
        mpeg4_mc.build,
        "MPEG-4 motion compensation + reconstruction (video encoding)",
    ),
    "cavity": (
        cavity.build,
        "cavity detection image chain (medical image processing)",
    ),
    "wavelet": (
        wavelet.build,
        "two-level 2-D 5/3 wavelet transform (image compression)",
    ),
    "jpeg_dct": (
        jpeg_dct.build,
        "JPEG encoder core: 8x8 DCT + quantisation + zig-zag (image)",
    ),
    "edge_detection": (
        edge_detection.build,
        "Sobel + non-max suppression + hysteresis (image processing)",
    ),
    "voice_coder": (
        voice_coder.build,
        "GSM-style LPC speech coder front end (audio processing)",
    ),
    "filterbank": (
        filterbank.build,
        "32-band pseudo-QMF analysis filter bank (audio processing)",
    ),
}


def all_app_names() -> tuple[str, ...]:
    """Names of the nine applications, in canonical report order."""
    return tuple(_REGISTRY)


def app_descriptions() -> dict[str, str]:
    """One-line description per application."""
    return {name: description for name, (_build, description) in _REGISTRY.items()}


def build_app(name: str) -> Program:
    """Build one application with its default parameters.

    Besides the nine bundled kernels, names of the form ``synth/<seed>``
    build the deterministically generated program of that synthetic
    case (:mod:`repro.synth`), so sweeps and benchmarks consume
    generated workloads exactly like bundled ones — including from
    sweep worker processes, which rebuild apps from the picklable name.
    """
    if name.startswith("synth/"):
        from repro.synth import build_synthetic_app

        return build_synthetic_app(name)
    try:
        builder, _description = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown application {name!r}; available: {', '.join(_REGISTRY)}"
            " (or synth/<seed> for a generated app)"
        ) from None
    return builder()


def build_all() -> dict[str, Program]:
    """Build the full nine-application suite."""
    return {name: build_app(name) for name in _REGISTRY}
