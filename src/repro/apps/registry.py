"""Uniform access to the nine-application suite.

The benchmark harness, CLI and examples address applications by name;
this registry is the single source of truth for which applications
exist and how to build them with default parameters.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValidationError
from repro.ir.program import Program

from repro.apps import (
    cavity,
    edge_detection,
    filterbank,
    jpeg_dct,
    motion_estimation,
    mpeg4_mc,
    qsdpcm,
    voice_coder,
    wavelet,
)

_REGISTRY: dict[str, tuple[Callable[[], Program], str]] = {
    "motion_estimation": (
        motion_estimation.build,
        "full-search block motion estimation, CIF, +/-8 (video encoding)",
    ),
    "qsdpcm": (
        qsdpcm.build,
        "quad-tree structured DPCM codec with hierarchical ME (video encoding)",
    ),
    "mpeg4_mc": (
        mpeg4_mc.build,
        "MPEG-4 motion compensation + reconstruction (video encoding)",
    ),
    "cavity": (
        cavity.build,
        "cavity detection image chain (medical image processing)",
    ),
    "wavelet": (
        wavelet.build,
        "two-level 2-D 5/3 wavelet transform (image compression)",
    ),
    "jpeg_dct": (
        jpeg_dct.build,
        "JPEG encoder core: 8x8 DCT + quantisation + zig-zag (image)",
    ),
    "edge_detection": (
        edge_detection.build,
        "Sobel + non-max suppression + hysteresis (image processing)",
    ),
    "voice_coder": (
        voice_coder.build,
        "GSM-style LPC speech coder front end (audio processing)",
    ),
    "filterbank": (
        filterbank.build,
        "32-band pseudo-QMF analysis filter bank (audio processing)",
    ),
}


APP_SUITE_VERSION = 1
"""Cache-busting version of the bundled kernels.

The exploration service keys cached results by *content*; bundled
applications are referenced by name, so their model source is not part
of the hash.  Bump this whenever a bundled kernel's model changes so
stale cached results are never served for the new models.
"""


def all_app_names() -> tuple[str, ...]:
    """Names of the nine applications, in canonical report order."""
    return tuple(_REGISTRY)


def app_cache_payload(name: str) -> dict:
    """Stable, JSON-serializable identity of an application for cache keys.

    Bundled kernels hash as ``(name, suite version)``; generated
    ``synth/<seed>`` apps hash as their seed (the program is a pure
    function of it).  Unknown names raise :class:`ValidationError` so a
    typo can never produce a syntactically valid cache key.
    """
    if name.startswith("synth/"):
        from repro.synth import GENERATOR_VERSION

        suffix = name[len("synth/") :]
        try:
            seed = int(suffix)
        except ValueError:
            raise ValidationError(
                f"synthetic app name {name!r} needs an integer seed suffix"
            ) from None
        return {"synth_seed": seed, "generator_version": GENERATOR_VERSION}
    if name not in _REGISTRY:
        raise ValidationError(
            f"unknown application {name!r}; available: {', '.join(_REGISTRY)}"
            " (or synth/<seed> for a generated app)"
        )
    return {"app": name, "suite_version": APP_SUITE_VERSION}


def app_descriptions() -> dict[str, str]:
    """One-line description per application."""
    return {name: description for name, (_build, description) in _REGISTRY.items()}


def build_app(name: str) -> Program:
    """Build one application with its default parameters.

    Besides the nine bundled kernels, names of the form ``synth/<seed>``
    build the deterministically generated program of that synthetic
    case (:mod:`repro.synth`), so sweeps and benchmarks consume
    generated workloads exactly like bundled ones — including from
    sweep worker processes, which rebuild apps from the picklable name.
    """
    if name.startswith("synth/"):
        from repro.synth import build_synthetic_app

        return build_synthetic_app(name)
    try:
        builder, _description = _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown application {name!r}; available: {', '.join(_REGISTRY)}"
            " (or synth/<seed> for a generated app)"
        ) from None
    return builder()


def build_all() -> dict[str, Program]:
    """Build the full nine-application suite."""
    return {name: build_app(name) for name in _REGISTRY}
