"""Two-level 2-D 5/3 wavelet transform (image compression domain).

Each level runs a horizontal filtering pass (5-tap windows along rows)
and a vertical pass (5-tap windows along columns).  The vertical pass
is the interesting one for layer assignment: its natural copy candidate
is a *strip of five image rows* that slides down by one row per outer
iteration — a multi-kilobyte buffer with a one-row delta fill, the
sweet spot for DMA prefetching (large transfers, plenty of row
processing to hide them behind).

Level 2 repeats both passes on the quarter-size LL band, producing a
second set of (smaller) copy chains whose lifetimes do not overlap the
level-1 ones — more in-place sharing for the occupancy model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class WaveletParams:
    """Workload knobs with literature-typical defaults."""

    frame: FrameFormat = CIF
    taps: int = 5
    mac_cycles: int = 12

    def __post_init__(self) -> None:
        require_positive(taps=self.taps, mac_cycles=self.mac_cycles)
        if self.frame.width % 4 or self.frame.height % 4:
            raise ValueError("frame must be divisible by 4 for two levels")


def build(params: WaveletParams | None = None) -> Program:
    """Build the two-level wavelet program (4 nests)."""
    p = params or WaveletParams()
    height, width = p.frame.height, p.frame.width
    half_h, half_w = height // 2, width // 2

    b = ProgramBuilder("wavelet")
    img = b.array("img", (height, width), element_bytes=2, kind="input")
    tmp1 = b.array("tmp1", (height, width), element_bytes=2, kind="internal")
    dec1 = b.array("dec1", (height, width), element_bytes=2, kind="internal")
    tmp2 = b.array("tmp2", (half_h, half_w), element_bytes=2, kind="internal")
    out2 = b.array("out2", (half_h, half_w), element_bytes=2, kind="output")

    # Level 1, horizontal pass: 5-tap window along each row.
    with b.loop("w1h_y", height):
        with b.loop("w1h_x", half_w, work=p.mac_cycles):
            b.read(
                img,
                dim(("w1h_y", 1)),
                dim(("w1h_x", 2), extent=p.taps),
                count=p.taps,
                label="h1_window",
            )
            b.write(tmp1, dim(("w1h_y", 1)), dim(("w1h_x", 1)), count=1, label="h1_low")
            b.write(
                tmp1,
                dim(("w1h_y", 1)),
                dim(("w1h_x", 1), offset=half_w),
                count=1,
                label="h1_high",
            )

    # Level 1, vertical pass: 5-tap window along each column; the copy
    # candidate at the row level is a 5-row strip sliding by 2.
    with b.loop("w1v_y", half_h):
        with b.loop("w1v_x", width, work=p.mac_cycles):
            b.read(
                tmp1,
                dim(("w1v_y", 2), extent=p.taps),
                dim(("w1v_x", 1)),
                count=p.taps,
                label="v1_window",
            )
            b.write(dec1, dim(("w1v_y", 1)), dim(("w1v_x", 1)), count=1, label="v1_low")
            b.write(
                dec1,
                dim(("w1v_y", 1), offset=half_h),
                dim(("w1v_x", 1)),
                count=1,
                label="v1_high",
            )

    # Level 2, horizontal pass on the LL quadrant of dec1.
    with b.loop("w2h_y", half_h):
        with b.loop("w2h_x", half_w // 2, work=p.mac_cycles):
            b.read(
                dec1,
                dim(("w2h_y", 1)),
                dim(("w2h_x", 2), extent=p.taps),
                count=p.taps,
                label="h2_window",
            )
            b.write(tmp2, dim(("w2h_y", 1)), dim(("w2h_x", 1)), count=1, label="h2_low")
            b.write(
                tmp2,
                dim(("w2h_y", 1)),
                dim(("w2h_x", 1), offset=half_w // 2),
                count=1,
                label="h2_high",
            )

    # Level 2, vertical pass.
    with b.loop("w2v_y", half_h // 2):
        with b.loop("w2v_x", half_w, work=p.mac_cycles):
            b.read(
                tmp2,
                dim(("w2v_y", 2), extent=p.taps),
                dim(("w2v_x", 1)),
                count=p.taps,
                label="v2_window",
            )
            b.write(out2, dim(("w2v_y", 1)), dim(("w2v_x", 1)), count=1, label="v2_low")
            b.write(
                out2,
                dim(("w2v_y", 1), offset=half_h // 2),
                dim(("w2v_x", 1)),
                count=1,
                label="v2_high",
            )
    return b.build()
