"""Edge detection: Sobel + non-maximum suppression + hysteresis.

A three-stage image-processing pipeline (the Canny skeleton) over a CIF
frame.  Like cavity detection it is window-filter dominated, but with a
heavier per-pixel arithmetic mix in the first stage (two 3x3
convolutions plus a magnitude estimate) and *two* intermediate planes
(gradient magnitude and direction) flowing between stages — more
simultaneously live row-strip copies than any other app in the suite,
which stresses the per-layer occupancy accounting at small L1 sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class EdgeDetectionParams:
    """Workload knobs with literature-typical defaults."""

    frame: FrameFormat = CIF
    window: int = 3
    sobel_cycles: int = 18
    nms_cycles: int = 10
    hysteresis_cycles: int = 8

    def __post_init__(self) -> None:
        require_positive(
            window=self.window,
            sobel_cycles=self.sobel_cycles,
            nms_cycles=self.nms_cycles,
            hysteresis_cycles=self.hysteresis_cycles,
        )


def build(params: EdgeDetectionParams | None = None) -> Program:
    """Build the three-nest edge-detection program."""
    p = params or EdgeDetectionParams()
    height, width = p.frame.height, p.frame.width
    taps = p.window * p.window

    b = ProgramBuilder("edge_detection")
    src = b.array("src", (height, width), element_bytes=1, kind="input")
    grad = b.array("grad", (height, width), element_bytes=2, kind="internal")
    gdir = b.array("gdir", (height, width), element_bytes=1, kind="internal")
    thin = b.array("thin", (height, width), element_bytes=1, kind="internal")
    edges = b.array("edges", (height, width), element_bytes=1, kind="output")

    # Nest 1: Sobel x/y convolutions + gradient magnitude/direction.
    with b.loop("es_y", height):
        with b.loop("es_x", width, work=p.sobel_cycles):
            b.read(
                src,
                dim(("es_y", 1), extent=p.window),
                dim(("es_x", 1), extent=p.window),
                count=2 * taps,
                label="sobel_window",
            )
            b.write(grad, dim(("es_y", 1)), dim(("es_x", 1)), count=1)
            b.write(gdir, dim(("es_y", 1)), dim(("es_x", 1)), count=1)

    # Nest 2: non-maximum suppression along the gradient direction.
    with b.loop("en_y", height):
        with b.loop("en_x", width, work=p.nms_cycles):
            b.read(
                grad,
                dim(("en_y", 1), extent=p.window),
                dim(("en_x", 1), extent=p.window),
                count=3,
                label="nms_neighbours",
            )
            b.read(gdir, dim(("en_y", 1)), dim(("en_x", 1)), count=1)
            b.write(thin, dim(("en_y", 1)), dim(("en_x", 1)), count=1)

    # Nest 3: hysteresis thresholding (one forward pass).
    with b.loop("eh_y", height):
        with b.loop("eh_x", width, work=p.hysteresis_cycles):
            b.read(
                thin,
                dim(("eh_y", 1), extent=p.window),
                dim(("eh_x", 1), extent=p.window),
                count=taps,
                label="hysteresis_window",
            )
            b.write(edges, dim(("eh_y", 1)), dim(("eh_x", 1)), count=1)
    return b.build()
