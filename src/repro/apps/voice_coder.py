"""GSM-style LPC speech coder front end (audio processing domain).

Four nests per the classic full-rate coder structure: pre-emphasis +
Hamming windowing (streaming), autocorrelation (the reuse hot spot:
each 160-sample frame is swept once per lag), Schur/Levinson recursion
(tiny working set), and residual filtering (short sliding windows).

Audio kernels sit at the low-reuse end of the paper's suite: working
sets are small (a frame buffer easily fits in L1), so the interesting
MHLA decisions are *home moves* of the frame-sized buffers and the
coefficient tables rather than deep copy chains — and because per-frame
processing is long relative to the small fills, TE hides essentially
all transfer time ("a lot of processing loops", section 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import require_positive
from repro.ir.builder import ProgramBuilder, dim
from repro.ir.program import Program


@dataclass(frozen=True)
class VoiceCoderParams:
    """Workload knobs with GSM-full-rate-like defaults."""

    nframes: int = 64
    samples: int = 160
    order: int = 8
    mac_cycles: int = 6
    recursion_cycles: int = 40

    def __post_init__(self) -> None:
        require_positive(
            nframes=self.nframes,
            samples=self.samples,
            order=self.order,
            mac_cycles=self.mac_cycles,
            recursion_cycles=self.recursion_cycles,
        )


def build(params: VoiceCoderParams | None = None) -> Program:
    """Build the four-nest LPC front-end program."""
    p = params or VoiceCoderParams()
    lags = p.order + 1

    b = ProgramBuilder("voice_coder")
    speech = b.array(
        "speech", (p.nframes, p.samples + p.order), element_bytes=2, kind="input"
    )
    hamm = b.array("hamm", (p.samples,), element_bytes=4, kind="input")
    wind = b.array(
        "wind", (p.nframes, p.samples + p.order), element_bytes=2, kind="internal"
    )
    acf = b.array("acf", (p.nframes, lags), element_bytes=4, kind="internal")
    lar = b.array("lar", (p.nframes, lags), element_bytes=4, kind="output")
    resid = b.array(
        "resid", (p.nframes, p.samples), element_bytes=2, kind="output"
    )

    # Nest 1: pre-emphasis + Hamming window (pure streaming).
    with b.loop("vp_f", p.nframes):
        with b.loop("vp_n", p.samples, work=8):
            b.read(
                speech,
                dim(("vp_f", 1)),
                dim(("vp_n", 1), extent=2),
                count=2,
                label="preemphasis_pair",
            )
            b.read(hamm, dim(("vp_n", 1)), count=1, label="window_coeff")
            b.write(wind, dim(("vp_f", 1)), dim(("vp_n", 1)), count=1)

    # Nest 2: autocorrelation — the frame buffer is re-read per lag.
    with b.loop("va_f", p.nframes):
        with b.loop("va_k", lags):
            with b.loop("va_n", p.samples, work=p.mac_cycles):
                b.read(
                    wind,
                    dim(("va_f", 1)),
                    dim(("va_n", 1), extent=lags),
                    count=2,
                    label="acf_pair",
                )
            b.write(acf, dim(("va_f", 1)), dim(("va_k", 1)), count=1)

    # Nest 3: Schur/Levinson recursion on the tiny acf vector.
    with b.loop("vl_f", p.nframes):
        with b.loop("vl_i", lags):
            with b.loop("vl_j", lags, work=p.recursion_cycles):
                b.read(acf, dim(("vl_f", 1)), dim(("vl_j", 1)), count=2)
            b.write(lar, dim(("vl_f", 1)), dim(("vl_i", 1)), count=1)

    # Nest 4: short-term residual filtering (order-tap sliding window).
    with b.loop("vr_f", p.nframes):
        with b.loop("vr_n", p.samples):
            with b.loop("vr_k", lags, work=p.mac_cycles):
                b.read(
                    wind,
                    dim(("vr_f", 1)),
                    dim(("vr_n", 1), extent=lags),
                    count=1,
                    label="filter_window",
                )
                b.read(lar, dim(("vr_f", 1)), dim(("vr_k", 1)), count=1)
            b.write(resid, dim(("vr_f", 1)), dim(("vr_n", 1)), count=1)
    return b.build()
