"""QSDPCM — quad-tree structured DPCM video codec (video encoding).

QSDPCM is the flagship multi-nest benchmark of the DTSE/ATOMIUM suite:
a hierarchical motion estimator (coarse search on a 4:1 subsampled
frame, then a small full-resolution refinement) followed by DPCM
reconstruction.  It exercises the parts of MHLA the single-nest kernels
cannot:

* **inter-nest lifetimes** — the subsampled frame is produced by nest 1
  and consumed by nest 2 only; its copies can share on-chip space with
  the refinement buffers (in-place);
* **inter-nest dependences** — prefetches of ``sub4`` in nest 2 may be
  hoisted across all of nest 2's loops because the producer finished in
  nest 1, while the reconstruction nest reads *and* writes ``recon``,
  which caps its hoisting freedom (the dependence-limit path of
  Figure 1's ``dep_analysis``);
* several simultaneously live copy chains competing for L1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.params import CIF, FrameFormat, require_positive
from repro.errors import ValidationError
from repro.ir.builder import ProgramBuilder, dim, fixed
from repro.ir.program import Program


@dataclass(frozen=True)
class QsdpcmParams:
    """Workload knobs with literature-typical defaults."""

    frames: int = 2
    frame: FrameFormat = CIF
    block: int = 16
    sub_factor: int = 4
    coarse_search: int = 2  # +/- at quarter resolution (~ +/-8 full res)
    refine_search: int = 2  # +/- at full resolution
    mac_cycles: int = 10

    def __post_init__(self) -> None:
        require_positive(
            frames=self.frames,
            block=self.block,
            sub_factor=self.sub_factor,
            coarse_search=self.coarse_search,
            refine_search=self.refine_search,
            mac_cycles=self.mac_cycles,
        )
        self.frame.blocks(self.block)  # full-resolution macroblock grid
        if self.block % self.sub_factor:
            raise ValidationError(
                f"block {self.block} must be divisible by sub_factor "
                f"{self.sub_factor}"
            )
        if self.frame.height % self.sub_factor or self.frame.width % self.sub_factor:
            raise ValidationError(
                f"frame {self.frame.name} not divisible by sub_factor "
                f"{self.sub_factor}"
            )


def build(params: QsdpcmParams | None = None) -> Program:
    """Build the four-nest QSDPCM program."""
    p = params or QsdpcmParams()
    height, width = p.frame.height, p.frame.width
    sub_h, sub_w = height // p.sub_factor, width // p.sub_factor
    rows, cols = p.frame.blocks(p.block)
    sub_block = p.block // p.sub_factor
    coarse = 2 * p.coarse_search + 1
    refine = 2 * p.refine_search + 1

    b = ProgramBuilder("qsdpcm")
    video = b.array(
        "video", (p.frames + 1, height, width), element_bytes=1, kind="input"
    )
    sub4 = b.array(
        "sub4", (p.frames + 1, sub_h, sub_w), element_bytes=1, kind="internal"
    )
    mv4 = b.array("mv4", (p.frames, rows, cols), element_bytes=4, kind="internal")
    recon = b.array(
        "recon", (p.frames + 1, height, width), element_bytes=1, kind="internal"
    )
    qout = b.array(
        "qout", (p.frames, height, width), element_bytes=1, kind="output"
    )
    # Value-indexed quantiser/VLC table: data-dependent accesses that no
    # static copy can serve (see jpeg_dct for the rationale).
    vlc = b.array("qs_vlc", (4096,), element_bytes=4, kind="input")

    # Nest 1: 4:1 mean subsampling of the incoming frame.
    with b.loop("qs_f", p.frames):
        with b.loop("qs_y", sub_h):
            with b.loop("qs_x", sub_w, work=p.sub_factor * p.sub_factor + 4):
                b.read(
                    video,
                    dim(("qs_f", 1), offset=1),
                    dim(("qs_y", p.sub_factor), extent=p.sub_factor),
                    dim(("qs_x", p.sub_factor), extent=p.sub_factor),
                    count=p.sub_factor * p.sub_factor,
                    label="subsample_window",
                )
                b.write(
                    sub4,
                    dim(("qs_f", 1), offset=1),
                    dim(("qs_y", 1)),
                    dim(("qs_x", 1)),
                    count=1,
                )

    # Nest 2: coarse full search on the subsampled frames.
    sub_pixels = sub_block * sub_block
    with b.loop("qm_f", p.frames):
        with b.loop("qm_by", rows):
            with b.loop("qm_bx", cols, work=coarse):
                with b.loop("qm_cy", coarse):
                    with b.loop("qm_cx", coarse, work=sub_pixels * p.mac_cycles):
                        b.read(
                            sub4,
                            dim(("qm_f", 1), offset=1),
                            dim(("qm_by", sub_block), extent=sub_block),
                            dim(("qm_bx", sub_block), extent=sub_block),
                            count=sub_pixels,
                            label="sub_cur",
                        )
                        b.read(
                            sub4,
                            dim(("qm_f", 1)),
                            dim(
                                ("qm_by", sub_block),
                                ("qm_cy", 1),
                                extent=sub_block,
                                offset=-p.coarse_search,
                            ),
                            dim(
                                ("qm_bx", sub_block),
                                ("qm_cx", 1),
                                extent=sub_block,
                                offset=-p.coarse_search,
                            ),
                            count=sub_pixels,
                            label="sub_ref",
                        )
                b.write(
                    mv4,
                    dim(("qm_f", 1)),
                    dim(("qm_by", 1)),
                    dim(("qm_bx", 1)),
                    count=1,
                )

    # Nest 3: full-resolution refinement around the coarse vector.
    pixels = p.block * p.block
    with b.loop("qr_f", p.frames):
        with b.loop("qr_by", rows):
            with b.loop("qr_bx", cols, work=refine):
                b.read(
                    mv4,
                    dim(("qr_f", 1)),
                    dim(("qr_by", 1)),
                    dim(("qr_bx", 1)),
                    count=1,
                    label="coarse_mv",
                )
                with b.loop("qr_cy", refine):
                    with b.loop("qr_cx", refine, work=pixels * p.mac_cycles):
                        b.read(
                            video,
                            dim(("qr_f", 1), offset=1),
                            dim(("qr_by", p.block), extent=p.block),
                            dim(("qr_bx", p.block), extent=p.block),
                            count=pixels,
                            label="full_cur",
                        )
                        b.read(
                            video,
                            dim(("qr_f", 1)),
                            dim(
                                ("qr_by", p.block),
                                ("qr_cy", 1),
                                extent=p.block,
                                offset=-p.refine_search,
                            ),
                            dim(
                                ("qr_bx", p.block),
                                ("qr_cx", 1),
                                extent=p.block,
                                offset=-p.refine_search,
                            ),
                            count=pixels,
                            label="full_ref",
                        )

    # Nest 4: DPCM reconstruction — reads the previous reconstructed
    # frame and writes the current one (same-nest dependence on recon).
    with b.loop("qd_f", p.frames):
        with b.loop("qd_y", height):
            with b.loop("qd_x", width, work=12):
                b.read(
                    video,
                    dim(("qd_f", 1), offset=1),
                    dim(("qd_y", 1)),
                    dim(("qd_x", 1)),
                    count=1,
                )
                b.read(
                    recon,
                    dim(("qd_f", 1)),
                    dim(("qd_y", 1), extent=1 + 2 * p.refine_search),
                    dim(("qd_x", 1), extent=1 + 2 * p.refine_search),
                    count=1,
                    label="pred_region",
                )
                b.write(
                    recon,
                    dim(("qd_f", 1), offset=1),
                    dim(("qd_y", 1)),
                    dim(("qd_x", 1)),
                    count=1,
                )
                b.read(
                    vlc,
                    fixed(extent=4096),
                    count=1,
                    label="vlc_lookup",
                )
                b.write(
                    qout,
                    dim(("qd_f", 1)),
                    dim(("qd_y", 1)),
                    dim(("qd_x", 1)),
                    count=1,
                )
    return b.build()
