"""Shared workload parameter helpers.

Video kernels use standard frame formats; keeping them here makes every
application module read like its reference description ("CIF luminance,
16x16 macroblocks, +/-8 search range").

The default experiment scale is chosen so that

* frame-sized arrays (~100 KiB at CIF) do **not** fit on chip — the
  whole point of layer assignment is deciding which *parts* move close
  to the CPU; and
* the discrete-event simulator stays fast (a handful of frames).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class FrameFormat:
    """A video frame geometry (luminance plane)."""

    name: str
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 16 or self.height < 16:
            raise ValidationError(f"frame {self.name!r} too small: {self}")

    @property
    def pixels(self) -> int:
        """Pixels per frame."""
        return self.width * self.height

    def blocks(self, block: int) -> tuple[int, int]:
        """(rows, cols) of macroblock grid; frame must tile evenly."""
        if self.height % block or self.width % block:
            raise ValidationError(
                f"{self.name}: {self.width}x{self.height} not divisible by "
                f"block size {block}"
            )
        return self.height // block, self.width // block


QCIF = FrameFormat("QCIF", width=176, height=144)
"""Quarter CIF: 176x144 luminance."""

CIF = FrameFormat("CIF", width=352, height=288)
"""CIF: 352x288 luminance — the default experiment scale."""


def require_positive(**values: int) -> None:
    """Validate that every named parameter is >= 1."""
    for name, value in values.items():
        if value < 1:
            raise ValidationError(f"parameter {name} must be >= 1, got {value}")
