"""Fleet-wide observability: metrics registry, trace events, profiling.

Three layers, all zero-dependency:

* :mod:`repro.obs.metrics` — typed instruments (counter/gauge/
  histogram) in per-component registries, merge-rendered as
  Prometheus text by the ``metrics`` RPC / ``repro call metrics``;
* :mod:`repro.obs.trace` — JSON-lines span events with a client-minted
  ``trace_id`` propagated through RPC params and claim records, shared
  across the fleet through one ``--trace-log`` file; slow-request
  dumps past a configurable threshold;
* :mod:`repro.obs.profile` — opt-in ``cProfile`` around cell
  evaluation, one ``.pstats`` artifact per content key.

Telemetry never touches cache keys, stored payloads, or deterministic
replay: instrumented paths stay byte-identical on results.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    render_registries,
)
from repro.obs.profile import configure_profile_dir, maybe_profile, profile_dir
from repro.obs.trace import (
    configure,
    emit,
    enabled,
    events_dropped,
    mint_trace_id,
    span,
)
from repro.obs.logs import setup_logging

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure",
    "configure_profile_dir",
    "emit",
    "enabled",
    "events_dropped",
    "global_registry",
    "maybe_profile",
    "mint_trace_id",
    "profile_dir",
    "render_registries",
    "setup_logging",
    "span",
]
