"""Structured JSON-lines trace events with fleet-wide correlation.

One exploration request touches many processes: the client, the
server that admitted it, possibly a *sibling* server that won the
claim for the same key, and spawn-pool workers.  Every one of them
appends span events to the same ``--trace-log`` file, tagged with a
``trace_id`` minted at the client and propagated through JSON-RPC
params and claim records — so ``repro obs tail --trace ID`` replays
one exploration's whole fleet history in order.

Mechanics:

* **one line per event, one ``os.write`` per line**, on a raw
  ``O_APPEND`` file descriptor — POSIX append semantics make
  concurrent writes from many processes land whole (events are far
  below the atomic-write threshold), so the shared file needs no
  cross-process lock, and the single unbuffered syscall keeps the
  enabled cost per event in single-digit microseconds;
* **durations are monotonic-clock** (``time.monotonic``), never
  wall-clock; the ``ts`` field is wall-clock for display only and is
  never fed into anything cache-keyed;
* **disabled is near-free**: :func:`emit` checks one module global
  and returns; spans skip the clock reads too;
* **config propagates to children through the environment**
  (``REPRO_TRACE_LOG``, ``REPRO_SLOW_MS``): spawn-pool workers and
  ``repro serve`` subprocesses pick the settings up on first emit
  without any explicit plumbing;
* a failed write **drops the event and counts it**
  (``repro_obs_events_dropped_total`` in the global registry) —
  telemetry must never take down the serving path.

Slow-path hook: a span whose duration crosses the configured
threshold (``--slow-ms`` / ``REPRO_SLOW_MS``) additionally emits a
``slow_request`` event carrying the span's full detail — the
"why was this submit slow" breadcrumb.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import global_registry

__all__ = [
    "configure",
    "configured_trace_log",
    "emit",
    "enabled",
    "events_dropped",
    "mint_trace_id",
    "slow_threshold_s",
    "span",
]

ENV_TRACE_LOG = "REPRO_TRACE_LOG"
ENV_SLOW_MS = "REPRO_SLOW_MS"

_lock = threading.Lock()
_path: str | None = None
_fd: int | None = None
_slow_threshold_s: float | None = None
_loaded_env = False

_dropped = global_registry().counter(
    "repro_obs_events_dropped_total",
    "Trace events lost to write failures (must stay 0).",
)


def mint_trace_id() -> str:
    """A fresh 16-hex-digit correlation id (client-side)."""
    return os.urandom(8).hex()


def events_dropped() -> int:
    """Events lost to write failures since process start."""
    return _dropped.value


def _load_env_locked() -> None:
    global _loaded_env, _path, _slow_threshold_s
    if _loaded_env:
        return
    _loaded_env = True
    env_path = os.environ.get(ENV_TRACE_LOG)
    if env_path and _path is None:
        _path = env_path
    env_slow = os.environ.get(ENV_SLOW_MS)
    if env_slow and _slow_threshold_s is None:
        try:
            _slow_threshold_s = float(env_slow) / 1000.0
        except ValueError:
            pass


def configure(
    trace_log: str | os.PathLike | None = None,
    slow_ms: float | None = None,
    propagate_env: bool = True,
) -> None:
    """Set (or clear, with ``trace_log=None``) this process's tracing.

    With *propagate_env* the settings are also exported so spawned
    children (pool workers, ``repro serve`` subprocesses under test)
    inherit them.
    """
    global _path, _fd, _slow_threshold_s, _loaded_env
    with _lock:
        _loaded_env = True  # explicit configuration beats the env
        if _fd is not None:
            try:
                os.close(_fd)
            except OSError:
                pass
            _fd = None
        _path = os.fspath(trace_log) if trace_log is not None else None
        _slow_threshold_s = (
            float(slow_ms) / 1000.0 if slow_ms is not None else None
        )
    if propagate_env:
        if trace_log is not None:
            os.environ[ENV_TRACE_LOG] = os.fspath(trace_log)
        else:
            os.environ.pop(ENV_TRACE_LOG, None)
        if slow_ms is not None:
            os.environ[ENV_SLOW_MS] = repr(float(slow_ms))
        else:
            os.environ.pop(ENV_SLOW_MS, None)


def enabled() -> bool:
    """Whether events currently go anywhere (cheap pre-check)."""
    with _lock:
        _load_env_locked()
        return _path is not None


def configured_trace_log() -> str | None:
    """The active trace-log path (``None`` when tracing is off)."""
    with _lock:
        _load_env_locked()
        return _path


def slow_threshold_s() -> float | None:
    """The slow-request threshold in seconds (``None`` = disabled)."""
    with _lock:
        _load_env_locked()
        return _slow_threshold_s


def _writer_locked() -> int | None:
    """The open ``O_APPEND`` fd, or None (must hold ``_lock``)."""
    global _fd, _path
    _load_env_locked()
    if _path is None:
        return None
    if _fd is None:
        try:
            _fd = os.open(
                _path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        except OSError:
            _dropped.inc()
            _path = None  # do not retry every event
            return None
    return _fd


def _json_value(value) -> str:
    """One JSON scalar, fast-pathed for the common event field types.

    ``json.dumps`` with custom separators builds a fresh encoder per
    call — several microseconds per event, which at nine events per
    warm request is the difference between "free" and "measurable".
    Plain strings/ints/floats format directly; anything exotic falls
    back to the real encoder.
    """
    kind = type(value)
    if kind is str:
        if '"' in value or "\\" in value or not value.isprintable():
            return json.dumps(value)
        return f'"{value}"'
    if kind is bool:
        return "true" if value else "false"
    if kind is int:
        return repr(value)
    if kind is float and math.isfinite(value):
        return repr(value)
    return json.dumps(value, separators=(",", ":"))


def emit(event: str, trace_id: str | None = None, **fields) -> None:
    """Append one event line (no-op unless tracing is configured).

    ``ts`` (wall-clock, display only) and ``pid`` are stamped here;
    ``dur_ms`` and any caller fields ride along.  One unbuffered
    ``os.write`` per line keeps concurrent appends from different
    processes whole and the per-event cost at one syscall.
    """
    with _lock:
        fd = _writer_locked()
        if fd is None:
            return
        parts = [
            f'"ts":{time.time():.6f}',
            f'"event":{_json_value(event)}',
            f'"pid":{os.getpid()}',
        ]
        if trace_id is not None:
            parts.append(f'"trace_id":{_json_value(trace_id)}')
        for key, value in fields.items():
            if value is not None:
                parts.append(f'"{key}":{_json_value(value)}')
        try:
            os.write(fd, ("{%s}\n" % ",".join(parts)).encode("utf-8"))
        except (OSError, ValueError, TypeError):
            _dropped.inc()


@contextmanager
def span(event: str, trace_id: str | None = None, **fields):
    """Time a block and emit one event with its monotonic duration.

    Exceptions propagate (the event still fires, with ``ok=false``).
    Crossing the slow threshold additionally emits a ``slow_request``
    dump carrying the span's full detail.
    """
    if not enabled():
        yield
        return
    start = time.monotonic()
    ok = True
    try:
        yield
    except BaseException:
        ok = False
        raise
    finally:
        duration = time.monotonic() - start
        dur_ms = round(duration * 1000.0, 3)
        emit(event, trace_id=trace_id, dur_ms=dur_ms,
             ok=None if ok else False, **fields)
        threshold = slow_threshold_s()
        if threshold is not None and duration >= threshold:
            emit(
                "slow_request",
                trace_id=trace_id,
                span=event,
                dur_ms=dur_ms,
                threshold_ms=round(threshold * 1000.0, 3),
                ok=None if ok else False,
                **fields,
            )
