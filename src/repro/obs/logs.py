"""Uniform stderr logging setup for the CLI (plain or JSON lines).

``--log-level/--log-json`` on every heavy CLI command route through
:func:`setup_logging`: one stderr handler on the ``repro`` logger
namespace, either human one-liners or machine-parseable JSON objects
(``ts``/``level``/``logger``/``msg``).  Library code just uses
``logging.getLogger("repro.<area>")`` and stays silent until a CLI
(or embedding application) opts in.
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = ["setup_logging"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class _JsonFormatter(logging.Formatter):
    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def setup_logging(level: str = "warning", json_lines: bool = False) -> None:
    """Configure the ``repro`` logger tree (idempotent per process).

    Replaces any handler a previous call installed, so tests and
    long-lived embedders can reconfigure freely.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(_LEVELS.get(level.lower(), logging.WARNING))
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    if json_lines:
        handler.setFormatter(_JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    logger.propagate = False
