"""Pretty-printer/follower for trace logs (``repro obs tail``).

The trace file is machine-first JSON lines; this module renders it
human-first: one aligned line per event with wall-clock time, pid,
the short trace id, the event name, duration, and the interesting
fields — optionally filtered to one trace id and optionally following
the file as the fleet appends to it (``tail -f`` style).
"""

from __future__ import annotations

import io
import json
import os
import time
from datetime import datetime
from pathlib import Path
from typing import Iterator, TextIO

__all__ = ["follow_lines", "format_event", "tail_trace_log"]

_SKIP_FIELDS = {"ts", "event", "pid", "trace_id", "dur_ms"}


def format_event(record: dict) -> str:
    """One aligned human line for one parsed event record."""
    ts = record.get("ts")
    when = (
        datetime.fromtimestamp(ts).strftime("%H:%M:%S.%f")[:-3]
        if isinstance(ts, (int, float))
        else "--:--:--.---"
    )
    pid = record.get("pid", "-")
    trace = record.get("trace_id", "-")
    event = record.get("event", "?")
    parts = [f"{when} pid={pid:<7} trace={trace:<16} {event:<18}"]
    dur = record.get("dur_ms")
    if dur is not None:
        parts.append(f"{dur:>9.3f}ms")
    extras = [
        f"{key}={record[key]}"
        for key in sorted(record)
        if key not in _SKIP_FIELDS
    ]
    if extras:
        parts.append(" ".join(extras))
    return " ".join(parts)


def follow_lines(
    handle: TextIO, follow: bool, poll_s: float = 0.2
) -> Iterator[str]:
    """Lines from *handle*; with *follow*, keep polling for appends."""
    while True:
        line = handle.readline()
        if line:
            yield line
            continue
        if not follow:
            return
        time.sleep(poll_s)


def _silence_broken_pipe(out: TextIO) -> None:
    """Point *out* at /dev/null after its reader went away.

    Once the pipe is broken every later write — including the
    interpreter's exit-time flush of ``sys.stdout`` — would raise
    again; redirecting the fd makes teardown silent.  Streams without
    a real fd (tests pass ``StringIO``) are left alone.
    """
    try:
        fd = out.fileno()
    except (OSError, ValueError, AttributeError, io.UnsupportedOperation):
        return
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, fd)
        os.close(devnull)
    except OSError:  # pragma: no cover - devnull unavailable
        pass


def tail_trace_log(
    path: str | Path,
    out: TextIO,
    follow: bool = False,
    trace_id: str | None = None,
) -> int:
    """Render *path* to *out*; returns a process exit code.

    Unparseable lines are surfaced raw (prefixed ``?``) rather than
    hidden — a corrupt trace line is itself a finding.  A reader that
    stops listening (``head``, a pager quit mid-stream, Ctrl-C out of
    ``--follow``) ends the tail cleanly, not with a traceback.
    """
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        print(f"error: cannot open trace log: {error}", file=out)
        return 1
    with handle:
        try:
            for line in follow_lines(handle, follow):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    print(f"? {line}", file=out)
                    continue
                if trace_id and record.get("trace_id") != trace_id:
                    continue
                print(format_event(record), file=out)
        except KeyboardInterrupt:
            pass
        except BrokenPipeError:
            _silence_broken_pipe(out)
    return 0
