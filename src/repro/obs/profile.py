"""Opt-in ``cProfile`` wrapping of cell evaluation.

``repro run/sweep/serve --profile DIR`` exports ``REPRO_PROFILE_DIR``;
the sweep worker bodies (both the serial guarded path and the
spawn-pool warm path) wrap each cell's evaluation in
:func:`maybe_profile` keyed by the cell's content key, writing
``DIR/<key>.pstats`` — one artifact per unique cell, loadable with
``python -m pstats`` or ``snakeviz``.  The environment variable is the
transport deliberately: spawn workers re-import this module in a fresh
interpreter and pick the setting up with zero plumbing.

Disabled (no env var) the wrapper is a no-op context manager; the
profiler never touches results, only observes the evaluation.
"""

from __future__ import annotations

import cProfile
import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["ENV_PROFILE_DIR", "configure_profile_dir", "maybe_profile",
           "profile_dir"]

ENV_PROFILE_DIR = "REPRO_PROFILE_DIR"


def configure_profile_dir(directory: str | os.PathLike | None) -> None:
    """Set (or clear) the profile artifact directory for this process
    and its spawned children."""
    if directory is None:
        os.environ.pop(ENV_PROFILE_DIR, None)
        return
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    os.environ[ENV_PROFILE_DIR] = str(path)


def profile_dir() -> Path | None:
    """The active artifact directory, or ``None`` when profiling is off."""
    value = os.environ.get(ENV_PROFILE_DIR)
    return Path(value) if value else None


@contextmanager
def maybe_profile(key: str):
    """Profile the block into ``<profile_dir>/<key>.pstats`` (no-op
    when profiling is disabled; artifact failures never propagate)."""
    directory = profile_dir()
    if directory is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        try:
            directory.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(directory / f"{key}.pstats"))
        except OSError:
            pass
