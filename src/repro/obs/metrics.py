"""Zero-dependency typed metrics instruments and their registry.

Every component that used to keep hand-rolled ``_foo += 1`` counters
(the service queue, the result store, the worker pool, both socket
servers) now owns a :class:`MetricsRegistry` of typed instruments:

* :class:`Counter` — monotonic, ``inc()`` only;
* :class:`Gauge` — settable/up-down, or backed by a callback so the
  exposition always reads the live value (queue depth, worker count);
* :class:`Histogram` — fixed upper-bound buckets (latency style),
  cumulative counts plus sum/count, Prometheus semantics.

Registries are **per component instance**, not process-global: tests
build dozens of services and stores per process, and a single global
namespace would collide.  The ``metrics`` RPC merges the registries of
one serving stack (service + store + pool + server + the process-wide
search registry) at exposition time via :func:`render_registries`.

Rendering is the Prometheus text format, hand-rolled (the repo takes
no third-party deps): ``# TYPE`` headers, families sorted by name,
label sets sorted within a family — byte-stable output for a given set
of instrument values, so goldens and dashboards can rely on field
names never reordering.

Lock discipline: instruments take one tiny lock per operation
(``inc``/``observe``); no instrument lock is ever held while calling
user code, and registry creation/getter calls lock only the name
table.  Hot paths pay one uncontended lock acquire per increment.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "render_registries",
]

DEFAULT_LATENCY_BUCKETS_S = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Upper bounds (seconds) for latency histograms — request-scale."""


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if value == float("inf"):
        return "+Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return "{" + inner + "}"


class Counter:
    """Monotonic counter (``_total`` naming convention)."""

    __slots__ = ("name", "help", "_lock", "_value")

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[str, str, float]]:
        return [(self.name, "", float(self.value))]

    kind = "counter"


class Gauge:
    """Settable/up-down instrument, optionally callback-backed.

    A callback gauge (``set_fn``) reads its value at exposition time —
    the idiom for occupancy-style values that already live behind the
    owning component's lock (queue depth, active connections).
    """

    __slots__ = ("name", "help", "_lock", "_value", "_fn")

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._fn = None

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def set_fn(self, fn: Callable[[], float]) -> None:
        """Back this gauge with *fn*, read at every exposition."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        # never call user code under the instrument lock
        try:
            return float(fn())
        except Exception:
            return 0.0

    def samples(self) -> list[tuple[str, str, float]]:
        return [(self.name, "", float(self.value))]

    kind = "gauge"


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound admits
    *v*; rendering emits ``_bucket{le=...}`` lines (cumulative,
    ``+Inf`` last), ``_sum`` and ``_count``.
    """

    __slots__ = ("name", "help", "_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        self.name = name
        self.help = help_text
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for count in self._counts:
                running += count
                cumulative.append(running)
            return cumulative, self._sum, self._count

    def samples(self) -> list[tuple[str, str, float]]:
        cumulative, total, count = self.snapshot()
        rows: list[tuple[str, str, float]] = []
        for bound, cum in zip(self._bounds, cumulative):
            rows.append(
                (f"{self.name}_bucket",
                 _format_labels({"le": _format_value(bound)}),
                 float(cum))
            )
        rows.append(
            (f"{self.name}_bucket", _format_labels({"le": "+Inf"}),
             float(cumulative[-1]))
        )
        rows.append((f"{self.name}_sum", "", total))
        rows.append((f"{self.name}_count", "", float(count)))
        return rows

    kind = "histogram"


_Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named table of instruments with idempotent typed getters.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (so independent call sites can
    share one) and raise when the name is bound to a different
    instrument type — a registration bug worth failing loudly on.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, factory) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.__name__.lower()}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(
            Counter, name, lambda: Counter(name, help_text)
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, lambda: Gauge(name, help_text))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, lambda: Histogram(name, help_text, buckets)
        )

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def render(self) -> str:
        """This registry alone, Prometheus text format."""
        return render_registries([self])


def render_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Merge-render several registries as one Prometheus text page.

    Families are sorted by name; a name registered in several
    registries keeps the first registration's help/type and emits each
    registry's samples (label-distinct or summed is the caller's
    concern — the serving stack's registries use disjoint names).
    Output is byte-stable for fixed instrument values.
    """
    by_name: dict[str, list[_Instrument]] = {}
    for registry in registries:
        for instrument in registry.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
    lines: list[str] = []
    for name in sorted(by_name):
        family = by_name[name]
        head = family[0]
        if head.help:
            lines.append(f"# HELP {name} {head.help}")
        lines.append(f"# TYPE {name} {head.kind}")
        if head.kind != "histogram" and len(family) > 1:
            # same scalar name in several registries: sum them
            total = sum(inst.value for inst in family)
            lines.append(f"{name} {_format_value(total)}")
        else:
            for sample_name, labels, value in head.samples():
                lines.append(f"{sample_name}{labels} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


_global_registry = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """Process-wide registry for code without a component instance.

    The search engine's instruments live here (engines are created per
    run deep inside workers/strategies, with no serving-stack handle to
    hang a registry on); the ``metrics`` RPC includes it.
    """
    return _global_registry
