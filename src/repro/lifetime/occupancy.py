"""Per-layer occupancy accounting with lifetime-aware sharing.

The assignment engine and the TE scheduler both need the same question
answered: *if this set of buffers is placed on this layer, what is the
peak number of bytes live at any point of the program timeline, and does
it fit the layer capacity?*  This module answers it over generic
:class:`SpaceClaim` records so it stays independent of the assignment
data structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ValidationError
from repro.lifetime.intervals import Interval, max_concurrent, occupancy_at
from repro.memory.hierarchy import MemoryHierarchy


@dataclass(frozen=True)
class SpaceClaim:
    """A buffer occupying *bytes* on *layer_name* during *interval*."""

    layer_name: str
    interval: Interval
    bytes: int
    tag: str

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValidationError(f"claim {self.tag!r} has negative size")


@dataclass(frozen=True)
class LayerOccupancy:
    """All claims placed on one layer."""

    layer_name: str
    claims: tuple[SpaceClaim, ...]

    @property
    def peak_bytes(self) -> int:
        """Maximum concurrent bytes over the timeline (in-place aware)."""
        return max_concurrent(
            (claim.interval, claim.bytes) for claim in self.claims
        )

    @property
    def sum_bytes(self) -> int:
        """Naive sum of claim sizes (what a lifetime-blind check would use)."""
        return sum(claim.bytes for claim in self.claims)

    def bytes_at(self, step: int) -> int:
        """Occupancy at one timeline step."""
        return occupancy_at(
            ((claim.interval, claim.bytes) for claim in self.claims), step
        )

    def fits(self, capacity_bytes: int) -> bool:
        """Whether the peak occupancy respects *capacity_bytes* (0 = unbounded)."""
        if capacity_bytes == 0:
            return True
        return self.peak_bytes <= capacity_bytes


@dataclass(frozen=True)
class OccupancyMap:
    """Occupancy of every layer of a hierarchy."""

    by_layer: dict[str, LayerOccupancy]

    def layer(self, layer_name: str) -> LayerOccupancy:
        """Occupancy record for *layer_name* (empty if nothing placed)."""
        return self.by_layer.get(
            layer_name, LayerOccupancy(layer_name=layer_name, claims=())
        )

    def fits(self, hierarchy: MemoryHierarchy) -> bool:
        """True when every layer's peak occupancy is within capacity."""
        return not self.violations(hierarchy)

    def violations(self, hierarchy: MemoryHierarchy) -> tuple[str, ...]:
        """Names of layers whose capacity is exceeded."""
        failed = []
        for layer in hierarchy:
            occupancy = self.layer(layer.name)
            if not occupancy.fits(layer.capacity_bytes):
                failed.append(layer.name)
        return tuple(failed)

    def headroom(self, hierarchy: MemoryHierarchy, layer_name: str) -> int:
        """Free bytes at the layer's peak (can be negative if violated).

        Unbounded layers report a large sentinel headroom.
        """
        layer = hierarchy.layer(layer_name)
        if layer.is_unbounded:
            return 1 << 62
        return layer.capacity_bytes - self.layer(layer_name).peak_bytes


def build_occupancy(claims: Iterable[SpaceClaim]) -> OccupancyMap:
    """Group claims by layer into an :class:`OccupancyMap`."""
    grouped: dict[str, list[SpaceClaim]] = {}
    for claim in claims:
        grouped.setdefault(claim.layer_name, []).append(claim)
    return OccupancyMap(
        by_layer={
            name: LayerOccupancy(layer_name=name, claims=tuple(layer_claims))
            for name, layer_claims in grouped.items()
        }
    )
