"""Lifetime and in-place (storage sharing) analysis.

MHLA "takes into consideration ... limited lifetime of the arrays of an
application" (paper, abstract): two buffers whose lifetimes do not
overlap can share the same on-chip space, so the capacity check of a
layer must use the **maximum concurrent occupancy over time**, not the
sum of buffer sizes.

The timeline granularity is the program's top-level nest sequence (nest
*k* runs strictly before nest *k+1*; the paper's scope is single
threaded).  Arrays are live from their first to their last accessing
nest (inputs from program start, outputs to program end); copies are
live only during their nest — until a time extension stretches them
backwards for prefetching, which is exactly the size effect the TE step
must re-check (Figure 1's ``fits_size``).
"""

from repro.lifetime.intervals import Interval, max_concurrent
from repro.lifetime.occupancy import LayerOccupancy, OccupancyMap, build_occupancy

__all__ = [
    "Interval",
    "LayerOccupancy",
    "OccupancyMap",
    "build_occupancy",
    "max_concurrent",
]
