"""Discrete intervals on the program timeline.

An :class:`Interval` is an inclusive ``[start, end]`` range of nest
indices.  The module also provides :func:`max_concurrent`, the weighted
maximum-overlap computation that turns a set of (interval, bytes) pairs
into a peak occupancy — the quantity compared against a layer capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import ValidationError


@dataclass(frozen=True, order=True)
class Interval:
    """Inclusive integer interval ``[start, end]`` on the nest timeline."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValidationError(f"interval start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValidationError(
                f"interval end {self.end} precedes start {self.start}"
            )

    def overlaps(self, other: "Interval") -> bool:
        """True when the two inclusive intervals share at least one step."""
        return self.start <= other.end and other.start <= self.end

    def contains(self, step: int) -> bool:
        """True when *step* lies inside the interval."""
        return self.start <= step <= self.end

    @property
    def length(self) -> int:
        """Number of timeline steps covered."""
        return self.end - self.start + 1

    def union_bound(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (used by lifetime merging)."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def __str__(self) -> str:
        return f"[{self.start}..{self.end}]"


def max_concurrent(weighted: Iterable[tuple[Interval, int]]) -> int:
    """Peak sum of weights over all timeline steps.

    Uses the classic sweep over interval endpoints: +weight at
    ``start``, -weight just after ``end``.
    """
    events: list[tuple[int, int]] = []
    for interval, weight in weighted:
        if weight < 0:
            raise ValidationError("occupancy weights must be >= 0")
        events.append((interval.start, weight))
        events.append((interval.end + 1, -weight))
    events.sort()
    peak = 0
    current = 0
    for _position, change in events:
        current += change
        peak = max(peak, current)
    return peak


def occupancy_at(weighted: Iterable[tuple[Interval, int]], step: int) -> int:
    """Sum of weights whose interval covers *step*."""
    return sum(weight for interval, weight in weighted if interval.contains(step))
