"""repro — Memory Hierarchy Layer Assignment with Time Extensions.

A faithful, self-contained reproduction of

    M. Dasygenis, E. Brockmeyer, B. Durinck, F. Catthoor, D. Soudris,
    A. Thanailakis, "A Memory Hierarchical Layer Assigning and
    Prefetching Technique to Overcome the Memory Performance/Energy
    Bottleneck", DATE 2005.

The library models data-dominated embedded applications as loop nests
with affine array references, enumerates data-reuse copy candidates,
assigns arrays and copies to the layers of a multi-layer memory
hierarchy (MHLA step 1), schedules application-specific prefetching of
the resulting DMA block transfers (step 2, "time extensions"), and
evaluates performance and energy with both an analytical estimator and
a discrete-event CPU+DMA simulator.

Quickstart::

    from repro import Mhla, embedded_3layer
    from repro.apps import build_app

    program = build_app("motion_estimation")
    result = Mhla(program, embedded_3layer()).explore()
    print(result.mhla_speedup_fraction, result.energy_reduction_fraction)

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.core.assignment import Assignment, GreedyAssigner, Objective
from repro.core.context import AnalysisContext
from repro.core.mhla import Mhla, MhlaResult
from repro.core.scenarios import ScenarioResult, evaluate_scenarios
from repro.core.te import TeSchedule, TimeExtensionEngine
from repro.core.tradeoff import TradeoffPoint, sweep_layer_sizes
from repro.ir import Program, ProgramBuilder
from repro.synth import generate_case
from repro.verify import DifferentialHarness, fuzz
from repro.memory import (
    DmaModel,
    MemoryHierarchy,
    MemoryLayer,
    Platform,
    embedded_2layer,
    embedded_3layer,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisContext",
    "Assignment",
    "DifferentialHarness",
    "DmaModel",
    "GreedyAssigner",
    "MemoryHierarchy",
    "MemoryLayer",
    "Mhla",
    "MhlaResult",
    "Objective",
    "Platform",
    "Program",
    "ProgramBuilder",
    "ScenarioResult",
    "TeSchedule",
    "TimeExtensionEngine",
    "TradeoffPoint",
    "embedded_2layer",
    "embedded_3layer",
    "evaluate_scenarios",
    "fuzz",
    "generate_case",
    "sweep_layer_sizes",
    "__version__",
]
