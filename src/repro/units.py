"""Unit helpers and human-readable formatting.

The library internally uses plain integers/floats with fixed units:

* sizes          — bytes (``int``)
* element counts — words/elements (``int``)
* time           — CPU clock cycles (``int`` or ``float`` for estimates)
* energy         — nanojoules (``float``)

This module centralises the conversion constants and the formatting
helpers used by reports, the CLI and the benchmark harness so that all
output is consistent.
"""

from __future__ import annotations

KIB = 1024
"""Bytes per kibibyte."""

MIB = 1024 * KIB
"""Bytes per mebibyte."""


def kib(n: float) -> int:
    """Return *n* KiB expressed in bytes (rounded to an int)."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return *n* MiB expressed in bytes (rounded to an int)."""
    return int(n * MIB)


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix (``B``/``KiB``/``MiB``).

    >>> fmt_bytes(512)
    '512 B'
    >>> fmt_bytes(2048)
    '2.0 KiB'
    >>> fmt_bytes(3 * 1024 * 1024)
    '3.0 MiB'
    """
    if n < KIB:
        return f"{int(n)} B"
    if n < MIB:
        return f"{n / KIB:.1f} KiB"
    return f"{n / MIB:.1f} MiB"


def fmt_cycles(n: float) -> str:
    """Format a cycle count with an engineering suffix.

    >>> fmt_cycles(950)
    '950'
    >>> fmt_cycles(1_500_000)
    '1.50M'
    """
    if n < 1_000:
        return f"{int(n)}"
    if n < 1_000_000:
        return f"{n / 1_000:.2f}k"
    if n < 1_000_000_000:
        return f"{n / 1_000_000:.2f}M"
    return f"{n / 1_000_000_000:.2f}G"


def fmt_energy_nj(n: float) -> str:
    """Format an energy value given in nanojoules.

    >>> fmt_energy_nj(740.0)
    '740.0 nJ'
    >>> fmt_energy_nj(2_500_000.0)
    '2.500 mJ'
    """
    if n < 1_000:
        return f"{n:.1f} nJ"
    if n < 1_000_000:
        return f"{n / 1_000:.3f} uJ"
    if n < 1_000_000_000:
        return f"{n / 1_000_000:.3f} mJ"
    return f"{n / 1_000_000_000:.3f} J"


def fmt_percent(fraction: float) -> str:
    """Format a fraction as a percentage string (``0.42`` -> ``'42.0%'``)."""
    return f"{fraction * 100.0:.1f}%"


def improvement(baseline: float, value: float) -> float:
    """Return the relative improvement of *value* over *baseline*.

    A positive result means *value* is better (smaller) than *baseline*:
    ``improvement(100, 40) == 0.6`` (a 60% reduction).  Returns 0.0 for a
    zero baseline, so callers never divide by zero.
    """
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp *value* to the inclusive range [*lo*, *hi*]."""
    if lo > hi:
        raise ValueError(f"clamp range is empty: lo={lo} > hi={hi}")
    return max(lo, min(hi, value))
