"""Random-restart greedy descent over the assignment move space.

Each restart jumps to a random point of the space — a short random
walk of accepted legal moves from the out-of-the-box placement — and
then runs sampled steepest descent to its local optimum: score a
sampled neighborhood, apply the best improving move, stop after
:data:`PATIENCE` consecutive sample rounds without improvement.  The
best local optimum across all restarts (and the greedy warm start,
which is itself one descent basin) is the result.

This is the classic multi-start baseline the portfolio's fancier
members must beat; on rugged instances its sheer basin coverage often
wins outright.
"""

from __future__ import annotations

import random

from repro.search.engine import Incumbent, SearchEngine
from repro.search.state import SearchState

__all__ = ["RestartGreedySearch"]

WALK_MAX = 12
"""Longest randomisation walk that seeds one restart."""

NEIGHBORHOOD = 16
"""Moves sampled (and scored) per descent round."""

PATIENCE = 3
"""Improvement-free descent rounds before a restart is abandoned."""


class RestartGreedySearch(SearchEngine):
    """Multi-start sampled descent (see module docstring)."""

    name = "restart"

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        events: list[str] = []
        budget = self.budget
        restart = 0
        while not budget.exhausted():
            restart += 1
            state = self._restart_state(self.ctx.out_of_box_assignment())
            # -- randomisation walk: accept any legal move ---------------
            for _ in range(rng.randrange(1, WALK_MAX + 1)):
                if budget.exhausted():
                    break
                move = state.propose(rng)
                budget.charge()
                if move is None:
                    continue
                if state.score(move) is not None:
                    state.apply(move)
            # -- sampled steepest descent (shared engine helper) ---------
            events.extend(
                self._sampled_descent(
                    state,
                    incumbent,
                    rng,
                    neighborhood=NEIGHBORHOOD,
                    patience=PATIENCE,
                    label=f"restart {restart}: ",
                )
            )
        return events
