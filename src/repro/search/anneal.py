"""Simulated annealing with calibrated restarts and descent polish.

Metropolis walk over the assignment move space: propose one random
move, accept improvements always and worsenings with probability
``exp(-delta/T)`` where *delta* is the **relative** objective change.
Because single-move deltas span orders of magnitude across programs (a
tiny kernel's move can swing the objective by 50%, a large one's by
0.1%), the temperature is not a fixed constant: every leg starts by
**calibrating** — it samples a few proposals, takes the median uphill
delta and sets the start temperature so that the median worsening move
is accepted with probability 1/2.  The walk then cools geometrically
to a floor over the leg, and finishes with a short sampled
steepest-descent **polish** that drives wherever the walk landed into
its local optimum (a cooling random walk is a poor descender on its
own).

When a leg ends, the next restarts from the incumbent with a halved
re-heat factor — later legs perturb less and exploit more.  All
randomness comes from the engine's seeded RNG and every leg's node
spend is charged to the shared budget, so a fixed ``(budget, seed)``
replays byte-for-byte.
"""

from __future__ import annotations

import math
import random

from repro.search.engine import Incumbent, SearchEngine
from repro.search.state import SearchState

__all__ = ["AnnealingSearch"]

LEGS = 4
"""Annealing legs (calibrate + walk + polish) per run."""

CALIBRATION_SAMPLES = 24
"""Proposals scored to estimate the case's uphill-delta scale."""

ACCEPT_TARGET = 0.5
"""A median uphill move starts at this acceptance probability."""

TEMPERATURE_SPAN = 1e-3
"""The floor temperature as a fraction of the leg's start temperature."""

RESTART_REHEAT = 0.5
"""Each restart leg re-heats to this fraction of the previous scale."""

POLISH_NEIGHBORHOOD = 16
"""Moves sampled per descent-polish round."""

POLISH_PATIENCE = 2
"""Improvement-free polish rounds before the leg ends."""

FALLBACK_TEMPERATURE = 0.05
"""Relative start temperature when calibration sees no uphill move."""


class AnnealingSearch(SearchEngine):
    """Calibrated simulated annealing (see module docstring)."""

    name = "annealing"

    def _relative_delta(self, state: SearchState, trial: float) -> float:
        return (trial - state.value) / max(abs(state.value), 1e-12)

    def _calibrate(
        self, state: SearchState, rng: random.Random, reheat: float
    ) -> float:
        """Start temperature from the median sampled uphill delta."""
        budget = self.budget
        uphill = []
        # Proposals first (RNG order unchanged), then one batched
        # scoring pass — no move is applied during calibration, so the
        # whole sample shares a single frontier.
        moves = []
        for _ in range(min(CALIBRATION_SAMPLES, budget.remaining)):
            move = state.propose(rng)
            budget.charge()
            if move is not None:
                moves.append(move)
        for trial in state.score_frontier(moves):
            if trial is None:
                continue
            delta = self._relative_delta(state, trial)
            if delta > 0.0:
                uphill.append(delta)
        if uphill:
            median = sorted(uphill)[len(uphill) // 2]
            start = median / math.log(1.0 / ACCEPT_TARGET)
        else:
            start = FALLBACK_TEMPERATURE
        return max(start * reheat, 1e-9)

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        events: list[str] = []
        budget = self.budget
        walk_nodes = max(1, (budget.nodes // LEGS) * 2 // 3)
        reheat = 1.0
        leg = 0
        while not budget.exhausted():
            leg += 1
            if leg > 1:
                state = self._restart_state(incumbent.assignment)
            temperature = self._calibrate(state, rng, reheat)
            floor = temperature * TEMPERATURE_SPAN
            cooling = TEMPERATURE_SPAN ** (1.0 / walk_nodes)
            for _ in range(walk_nodes):
                if budget.exhausted():
                    break
                move = state.propose(rng)
                budget.charge()
                temperature = max(temperature * cooling, floor)
                if move is None:
                    continue
                trial = state.score(move)
                if trial is None:
                    continue
                delta = self._relative_delta(state, trial)
                if delta <= 0.0 or rng.random() < math.exp(-delta / temperature):
                    state.apply(move)
                    if incumbent.offer(state.assignment, state.value):
                        events.append(
                            f"{self.name}: {move.describe()} -> "
                            f"{state.value:.6g} (leg {leg})"
                        )
            # descent polish: a cooling random walk is a poor descender
            events.extend(
                self._sampled_descent(
                    state,
                    incumbent,
                    rng,
                    neighborhood=POLISH_NEIGHBORHOOD,
                    patience=POLISH_PATIENCE,
                    label="polish ",
                )
            )
            reheat *= RESTART_REHEAT
        return events
