"""Constructive beam search over per-group copy selections.

Where annealing and tabu *perturb* a complete assignment, beam search
*constructs* one: groups are decided in canonical order, and at each
depth only the :data:`WIDTH` best partial assignments survive.  A
partial is scored optimistically-exactly: chosen groups contribute
their selected chains, undecided groups their chain under the current
incumbent — so partial scores are comparable across the beam and the
final leaf score is the exact objective.

Array homes are inherited from the warm-start incumbent (the greedy
engine already optimises homes well; the beam explores the
exponentially larger copy-selection dimension).  Each partial carries
its own :class:`~repro.core.incremental.OccupancyLedger` clone, so
capacity feasibility prunes partials as they grow, not after.

The whole construction is deterministic — the RNG is unused — which
makes beam the portfolio's reproducible "systematic" member between
the random walkers and the exact solver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.assignment import objective_from_totals
from repro.core.frontier import FrontierScorer
from repro.core.incremental import OccupancyLedger
from repro.search.engine import Incumbent, SearchEngine
from repro.search.state import SearchState

__all__ = ["BeamSearch"]

WIDTH = 8
"""Partial assignments kept per depth."""

MAX_OPTIONS_PER_GROUP = 64
"""Cap on feasible options scored per (partial, group) — bounds the
work on groups with combinatorially many chains; the beam's pruning
still ranks everything that was scored."""


@dataclass
class _Partial:
    """One beam entry: selections so far + its ledger + exact score."""

    selections: tuple[tuple[str, tuple[tuple[str, str], ...]], ...]
    ledger: OccupancyLedger
    contribs: list
    value: float


@dataclass
class _Expansion:
    """One scored (partial x option) candidate, pre-materialisation.

    The width x branch expansion is scored through the parent partial's
    :class:`FrontierScorer` (one flattening amortised over every option
    of that parent); the full contribution list is only copied for the
    WIDTH survivors that actually enter the next beam.
    """

    parent: _Partial
    option: tuple[tuple[str, str], ...]
    ledger: OccupancyLedger
    contribution: object
    value: float


class BeamSearch(SearchEngine):
    """Width-limited constructive search (see module docstring)."""

    name = "beam"

    def _group_options(self, spec) -> list[tuple[tuple[str, str], ...]]:
        """All monotone (uid, layer) chains of one group, incl. empty."""
        hierarchy = self.ctx.platform.hierarchy
        onchip = hierarchy.onchip_layers
        candidates = sorted(spec.candidates, key=lambda c: c.level)
        options: list[tuple[tuple[str, str], ...]] = [()]

        def extend(start, chain, last_layer_index):
            for position in range(start, len(candidates)):
                candidate = candidates[position]
                for layer in onchip:
                    layer_index = hierarchy.index_of(layer)
                    if layer_index <= last_layer_index:
                        continue
                    grown = chain + ((candidate.uid, layer.name),)
                    options.append(grown)
                    extend(position + 1, grown, layer_index)

        extend(0, (), 0)
        return options

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        del rng  # fully deterministic
        evaluator = self.evaluator
        budget = self.budget
        base_assignment = incumbent.assignment
        group_keys = list(self.ctx.specs)

        # Root: incumbent homes, no copies anywhere.
        empty = base_assignment
        for group_key in group_keys:
            for uid, _layer in tuple(empty.copies.get(group_key, ())):
                empty = empty.without_copy(group_key, uid)
        root = _Partial(
            selections=(),
            ledger=evaluator.ledger_for(empty),
            contribs=list(evaluator.contributions(empty)),
            value=0.0,
        )
        root.value = state.fold_value(root.contribs)
        beam = [root]

        for depth, group_key in enumerate(group_keys):
            spec = self.ctx.specs[group_key]
            home = base_assignment.array_home[spec.group.array_name]
            index = evaluator.group_index(group_key)
            nest = spec.group.nest_index
            options = self._group_options(spec)
            grown: list[_Expansion] = []
            for partial in beam:
                # One flattened scorer per parent partial, shared by
                # all of its options (each substitutes the same index).
                scorer = FrontierScorer(
                    partial.contribs, evaluator.compute_cycles
                )
                scored = 0
                for option in options:
                    if budget.exhausted() or scored >= MAX_OPTIONS_PER_GROUP:
                        break
                    budget.charge()
                    contribution = evaluator.contribution_or_none(
                        group_key, home, option
                    )
                    if contribution is None:
                        continue
                    # Shared ledgers are never mutated: only clones
                    # (non-empty options) take the option's claims.
                    ledger = partial.ledger.clone() if option else partial.ledger
                    fits = True
                    for uid, layer_name in option:
                        if not ledger.add(
                            layer_name, nest, nest, evaluator.candidate_bytes(uid)
                        ):
                            fits = False
                    if not fits:
                        continue
                    scored += 1
                    cycles, energy = scorer.substituted_totals(
                        ((index, contribution),)
                    )
                    grown.append(
                        _Expansion(
                            parent=partial,
                            option=option,
                            ledger=ledger,
                            contribution=contribution,
                            value=objective_from_totals(
                                cycles, energy, self.objective
                            ),
                        )
                    )
                if budget.exhausted():
                    break
            incomplete = budget.exhausted() and depth + 1 < len(group_keys)
            if not grown or incomplete:
                return [f"{self.name}: budget exhausted before a full pass"]
            # Stable sort: ties resolve by insertion order (deterministic).
            grown.sort(key=lambda e: e.value)
            beam = []
            for expansion in grown[:WIDTH]:
                contribs = list(expansion.parent.contribs)
                contribs[index] = expansion.contribution
                beam.append(
                    _Partial(
                        selections=expansion.parent.selections
                        + ((group_key, expansion.option),),
                        ledger=expansion.ledger,
                        contribs=contribs,
                        value=expansion.value,
                    )
                )

        events: list[str] = []
        best = beam[0]
        assignment = empty
        for group_key, option in best.selections:
            for uid, layer_name in option:
                assignment = assignment.with_copy(group_key, uid, layer_name)
        if incumbent.offer(assignment, best.value):
            events.append(
                f"{self.name}: width-{WIDTH} construction -> {best.value:.6g}"
            )
        return events
