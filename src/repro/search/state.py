"""Mutable search state shared by all metaheuristic engines.

The greedy engine rebuilds its view of the assignment every round; a
metaheuristic walks a long random trajectory and needs O(delta)
*apply* and *undo* on top of the O(delta) scoring PR 1's
:class:`~repro.core.incremental.IncrementalEvaluator` already gives.
:class:`SearchState` packages exactly that:

* the current :class:`~repro.core.context.Assignment` (replaced, never
  mutated, so snapshots are free — an incumbent is just a reference);
* the canonical-order list of cached per-group contributions, so
  scoring a trial move is "substitute one entry, fold the totals" —
  bit-identical to scoring the trial assignment from scratch;
* a live :class:`~repro.core.incremental.OccupancyLedger`, so capacity
  feasibility of a move is a pure probe.

Moves are the three reassignment primitives of the ``(group, home,
copies)`` space — :class:`AddCopy`, :class:`DropCopy`,
:class:`Rehome` — and every move has an exact :meth:`SearchState.inverse`,
so engines can walk, backtrack and restart without ever re-deriving
state from scratch.  Occupancy arithmetic is integer and contributions
are cached by value, so apply followed by undo restores the ledger and
the totals exactly (the hypothesis battery in
``tests/search/test_move_properties.py`` pins this).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.assignment import Objective, objective_from_totals
from repro.core.context import AnalysisContext, Assignment
from repro.core.frontier import FrontierScorer
from repro.core.incremental import IncrementalEvaluator, OccupancyLedger
from repro.errors import ValidationError

__all__ = ["AddCopy", "DropCopy", "Move", "Rehome", "SearchState"]


@dataclass(frozen=True)
class AddCopy:
    """Select one copy candidate onto an on-chip layer."""

    group_key: str
    uid: str
    layer_name: str

    def describe(self) -> str:
        return f"copy {self.uid} -> {self.layer_name}"


@dataclass(frozen=True)
class DropCopy:
    """Deselect one currently selected copy."""

    group_key: str
    uid: str
    layer_name: str

    def describe(self) -> str:
        return f"drop {self.uid} ({self.layer_name})"


@dataclass(frozen=True)
class Rehome:
    """Move a whole array's home layer (on-chip or back off-chip)."""

    array_name: str
    old_layer: str
    new_layer: str

    def describe(self) -> str:
        return f"home {self.array_name} -> {self.new_layer}"


Move = AddCopy | DropCopy | Rehome


class SearchState:
    """One walkable point of the assignment space (see module docstring).

    Parameters
    ----------
    ctx:
        Shared analysis context.
    objective:
        Metric the engines minimise; :attr:`value` is its scalar for
        the current assignment.
    evaluator:
        Optionally share a pre-warmed evaluator — the portfolio runs
        every strategy over one evaluator so contribution caches warm
        across strategies.
    assignment:
        Starting point (default: the out-of-the-box placement).
    """

    def __init__(
        self,
        ctx: AnalysisContext,
        objective: Objective = Objective.EDP,
        evaluator: IncrementalEvaluator | None = None,
        assignment: Assignment | None = None,
    ):
        self.ctx = ctx
        self.objective = objective
        self.evaluator = evaluator or IncrementalEvaluator(ctx)
        self.assignment = (
            assignment if assignment is not None else ctx.out_of_box_assignment()
        )
        self.contribs = self.evaluator.contributions(self.assignment)
        self.ledger: OccupancyLedger = self.evaluator.ledger_for(self.assignment)
        self.value = self.fold_value(self.contribs)
        self._frontier: FrontierScorer | None = None
        hierarchy = ctx.platform.hierarchy
        self._onchip = tuple(layer.name for layer in hierarchy.onchip_layers)
        self._offchip = hierarchy.offchip.name
        # Static add-move site table, in deterministic (ctx.specs x
        # hierarchy) order, so seeded random proposals replay
        # identically.  Drop/rehome sites depend on the current
        # assignment and are enumerated on demand.
        self.add_sites: tuple[AddCopy, ...] = tuple(
            AddCopy(group_key, candidate.uid, layer_name)
            for group_key, spec in ctx.specs.items()
            for candidate in spec.candidates
            for layer_name in self._onchip
        )

    # ------------------------------------------------------------------
    # scoring (pure probes)
    # ------------------------------------------------------------------

    def fold_value(self, contribs) -> float:
        """Objective of a canonical-order contribution list (exact fold)."""
        cycles, energy = self.evaluator.totals_of(contribs)
        return objective_from_totals(cycles, energy, self.objective)

    def _substituted(self, substitutions) -> float:
        contribs = list(self.contribs)
        for index, contribution in substitutions:
            contribs[index] = contribution
        return self.fold_value(contribs)

    def _move_substitutions(self, move: Move):
        """Legality + feasibility checks of one move, as substitutions.

        Returns the ``(group_index, contribution)`` substitution list a
        legal, feasible *move* induces, or ``None`` when the move is
        illegal/infeasible.  Single point of truth for move semantics:
        both the per-move reference path (:meth:`score`) and the
        batched path (:meth:`score_frontier`) consume it, so they can
        never disagree on which moves are admissible — and because it
        performs the identical evaluator lookups in the identical
        order, cache hit/miss counters match between the paths too.
        """
        evaluator = self.evaluator
        if isinstance(move, AddCopy):
            existing = self.assignment.copies.get(move.group_key, ())
            if any(uid == move.uid for uid, _layer in existing):
                return None
            home = self.evaluator.group_state(self.assignment, move.group_key)[0]
            contribution = evaluator.contribution_or_none(
                move.group_key, home, existing + ((move.uid, move.layer_name),)
            )
            if contribution is None:
                return None
            if not evaluator.fits_with_copy(
                self.ledger, move.group_key, move.uid, move.layer_name
            ):
                return None
            return ((evaluator.group_index(move.group_key), contribution),)
        if isinstance(move, DropCopy):
            existing = self.assignment.copies.get(move.group_key, ())
            if (move.uid, move.layer_name) not in existing:
                return None
            remaining = tuple(
                pair for pair in existing if pair[0] != move.uid
            )
            home = self.evaluator.group_state(self.assignment, move.group_key)[0]
            contribution = evaluator.contribution_or_none(
                move.group_key, home, remaining
            )
            if contribution is None:  # pragma: no cover - subchains stay legal
                return None
            return ((evaluator.group_index(move.group_key), contribution),)
        if isinstance(move, Rehome):
            if self.assignment.array_home.get(move.array_name) != move.old_layer:
                return None
            if move.new_layer == move.old_layer:
                return None
            substitutions = []
            for group_key in evaluator.groups_of_array(move.array_name):
                contribution = evaluator.contribution_or_none(
                    group_key,
                    move.new_layer,
                    self.assignment.copies.get(group_key, ()),
                )
                if contribution is None:
                    return None
                substitutions.append(
                    (evaluator.group_index(group_key), contribution)
                )
            if not evaluator.fits_with_home(
                self.ledger, move.array_name, move.old_layer, move.new_layer
            ):
                return None
            return tuple(substitutions)
        raise ValidationError(f"unknown move type {type(move).__name__}")

    def score(self, move: Move) -> float | None:
        """Objective after *move*, or None when illegal/infeasible.

        A pure probe: neither the assignment nor the ledger changes.
        This is the per-move reference path — it substitutes into a
        copy of the full contribution list and folds it whole; the
        batched :meth:`score_frontier` must stay bit-identical to it.
        """
        substitutions = self._move_substitutions(move)
        if substitutions is None:
            return None
        return self._substituted(substitutions)

    def frontier(self) -> FrontierScorer:
        """The struct-of-arrays scorer of the *current* contributions.

        Built lazily and invalidated by :meth:`apply`, so engines that
        score whole neighborhoods between applies amortise one
        flattening pass over every candidate move.
        """
        if self._frontier is None:
            self._frontier = FrontierScorer(
                self.contribs, self.evaluator.compute_cycles
            )
        return self._frontier

    def score_frontier(self, moves) -> list[float | None]:
        """Score a whole frontier of moves in one batched pass.

        Returns one entry per move, aligned with *moves*: the objective
        after the move, or ``None`` when illegal/infeasible — each
        entry bit-identical to :meth:`score` of that move.  Instead of
        copying and re-folding the full contribution list per move, all
        candidates share one flattened :class:`FrontierScorer` and each
        replays only the fold suffix its substitutions disturb.
        """
        scorer = self.frontier()
        objective = self.objective
        values: list[float | None] = []
        for move in moves:
            substitutions = self._move_substitutions(move)
            if substitutions is None:
                values.append(None)
                continue
            cycles, energy = scorer.substituted_totals(substitutions)
            values.append(objective_from_totals(cycles, energy, objective))
        return values

    # ------------------------------------------------------------------
    # apply / undo
    # ------------------------------------------------------------------

    def apply(self, move: Move) -> None:
        """Apply a *legal* move (score it first); O(changed groups).

        Raises :class:`ValidationError` when the move is illegal or
        infeasible — engines only apply moves whose :meth:`score`
        returned a value, so a raise here is an engine bug.
        """
        value = self.score(move)
        if value is None:
            raise ValidationError(
                f"cannot apply illegal/infeasible move {move.describe()}"
            )
        evaluator = self.evaluator
        if isinstance(move, AddCopy):
            self.assignment = self.assignment.with_copy(
                move.group_key, move.uid, move.layer_name
            )
            evaluator.apply_copy(
                self.ledger, move.group_key, move.uid, move.layer_name
            )
            touched = (move.group_key,)
        elif isinstance(move, DropCopy):
            self.assignment = self.assignment.without_copy(
                move.group_key, move.uid
            )
            evaluator.remove_copy(
                self.ledger, move.group_key, move.uid, move.layer_name
            )
            touched = (move.group_key,)
        else:
            self.assignment = self.assignment.with_home(
                move.array_name, move.new_layer
            )
            evaluator.apply_home(
                self.ledger, move.array_name, move.old_layer, move.new_layer
            )
            touched = evaluator.groups_of_array(move.array_name)
        for group_key in touched:
            home, selections = evaluator.group_state(self.assignment, group_key)
            self.contribs[evaluator.group_index(group_key)] = (
                evaluator.contribution_or_none(group_key, home, selections)
            )
        self.value = value
        self._frontier = None  # contributions changed; scorer is stale

    def inverse(self, move: Move) -> Move:
        """The move that exactly undoes *move*."""
        if isinstance(move, AddCopy):
            return DropCopy(move.group_key, move.uid, move.layer_name)
        if isinstance(move, DropCopy):
            return AddCopy(move.group_key, move.uid, move.layer_name)
        return Rehome(move.array_name, move.new_layer, move.old_layer)

    def undo(self, move: Move) -> None:
        """Undo a previously applied move (ledger/totals restore exactly)."""
        self.apply(self.inverse(move))

    # ------------------------------------------------------------------
    # move proposal
    # ------------------------------------------------------------------

    def drop_sites(self) -> tuple[DropCopy, ...]:
        """Every currently selected copy as a drop move (dynamic)."""
        return tuple(
            DropCopy(group_key, uid, layer_name)
            for group_key, selections in self.assignment.copies.items()
            for uid, layer_name in selections
        )

    def rehome_sites(self) -> tuple[Rehome, ...]:
        """Every array-home change away from the current home (dynamic)."""
        return tuple(
            Rehome(array_name, current, layer_name)
            for array_name, current in self.assignment.array_home.items()
            for layer_name in (self._offchip,) + self._onchip
            if layer_name != current
        )

    def propose(self, rng: random.Random) -> Move | None:
        """One random candidate move (may score as illegal — that is fine).

        Kinds are weighted toward copy additions (the productive
        direction from sparse assignments); drops and rehomes keep the
        walk reversible.  Returns None when the chosen kind has no
        sites (e.g. nothing to drop yet).
        """
        roll = rng.random()
        if roll < 0.55:
            sites = self.add_sites
        elif roll < 0.75:
            sites = self.drop_sites()
        else:
            sites = self.rehome_sites()
        if not sites:
            return None
        return sites[rng.randrange(len(sites))]

    def neighborhood_sample(
        self, rng: random.Random, size: int
    ) -> list[Move]:
        """*size* random proposals (duplicates possible, order seeded)."""
        moves = []
        for _ in range(size):
            move = self.propose(rng)
            if move is not None:
                moves.append(move)
        return moves
