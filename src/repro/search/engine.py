"""Common anytime search-engine machinery.

Every metaheuristic in this package follows the same contract as
:class:`~repro.core.assignment.GreedyAssigner`: ``run()`` returns
``(assignment, SearchTrace)``, so the scenario runner, the sweep grid
and the exploration service treat all engines interchangeably.

The shared skeleton (:class:`SearchEngine`) provides:

* a **greedy warm start** — the paper's steepest-descent result is the
  initial incumbent, so every engine is *never worse than greedy* by
  construction, for any budget (the anytime guarantee);
* a seeded :class:`random.Random`, making runs byte-for-byte
  deterministic for a fixed ``(budget, seed)``;
* a :class:`SearchBudget` counting scored moves (nodes), so strategies
  race under comparable budgets;
* incumbent tracking plus the strategy-annotated
  :class:`~repro.core.assignment.SearchTrace` assembly.

Strategies implement one hook, :meth:`SearchEngine._explore`, which
walks a :class:`~repro.search.state.SearchState` and reports
improvements through :class:`Incumbent`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.assignment import (
    GreedyAssigner,
    Objective,
    SearchStats,
    SearchTrace,
)
from repro.core.context import AnalysisContext, Assignment
from repro.core.exhaustive import ExhaustiveAssigner
from repro.core.incremental import IncrementalEvaluator
from repro.errors import AssignmentError
from repro.obs import trace as obs_trace
from repro.obs.metrics import global_registry
from repro.search.state import SearchState

__all__ = ["ExactSearch", "Incumbent", "SearchBudget", "SearchEngine"]

MAX_TRACE_STEPS = 24
"""Improvement events recorded on a metaheuristic trace (then elided)."""

_SEARCH_RUNS = global_registry().counter(
    "repro_search_runs_total", "Search-engine runs (any strategy)."
)
_SEARCH_IMPROVEMENTS = global_registry().counter(
    "repro_search_improvements_total",
    "Incumbent improvements across all engine runs.",
)
_SEARCH_NODES = global_registry().counter(
    "repro_search_nodes_total",
    "Scored moves charged against engine budgets.",
)

EXACT_NODE_FACTOR = 100
"""Branch-and-bound nodes granted per unit of move budget.

A BnB node is an option-table lookup plus a couple of float adds —
roughly two orders of magnitude cheaper than a metaheuristic's scored
move (full substitution fold + ledger probe) — so the exact engine
converts its share of the portfolio budget at this rate.
"""


def fold_search_stats(
    greedy_stats: SearchStats | None,
    extra_nodes: int,
    extra_applied: int,
    evaluator: IncrementalEvaluator,
    hits_before: int,
    misses_before: int,
    started: float,
) -> SearchStats:
    """Greedy warm-start counters + a metaheuristic phase, as one block.

    Single construction point for every engine's (and the portfolio's)
    :class:`SearchStats`, so warm-start folding can never drift between
    the single-engine and portfolio paths.
    """
    return SearchStats(
        rounds=greedy_stats.rounds if greedy_stats else 0,
        moves_evaluated=extra_nodes
        + (greedy_stats.moves_evaluated if greedy_stats else 0),
        moves_applied=extra_applied
        + (greedy_stats.moves_applied if greedy_stats else 0),
        cleanup_drops=greedy_stats.cleanup_drops if greedy_stats else 0,
        cache_hits=evaluator.stats.hits - hits_before,
        cache_misses=evaluator.stats.misses - misses_before,
        wall_time_s=time.perf_counter() - started,
    )


class SearchBudget:
    """Node/time budget shared by one engine run.

    ``nodes`` bounds scored moves — the deterministic budget the CLI's
    ``--budget`` flag sets.  ``wall_time_s`` optionally adds a
    wall-clock cut-off; results under a time cut are still legal and
    never worse than greedy, but no longer machine-independent, so
    tests and cached sweeps use node budgets only.
    """

    def __init__(self, nodes: int = 2000, wall_time_s: float | None = None):
        if nodes < 1:
            raise AssignmentError(f"budget nodes must be >= 1, got {nodes}")
        if wall_time_s is not None and wall_time_s <= 0:
            raise AssignmentError("budget wall_time_s must be positive")
        self.nodes = nodes
        self.wall_time_s = wall_time_s
        self.used = 0
        self._deadline = (
            time.monotonic() + wall_time_s if wall_time_s is not None else None
        )

    def charge(self, count: int = 1) -> None:
        """Record *count* scored moves."""
        self.used += count

    def exhausted(self) -> bool:
        """True once no further move may be scored."""
        if self.used >= self.nodes:
            return True
        return self._deadline is not None and time.monotonic() > self._deadline

    @property
    def remaining(self) -> int:
        return max(0, self.nodes - self.used)

    def remaining_time(self) -> float | None:
        """Seconds left before the wall-clock cut (None when untimed).

        Lets a parent budget hand *slices of its own deadline* to
        sub-budgets (the portfolio gives each member the remaining
        wall time, not a fresh full allowance)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()


@dataclass
class Incumbent:
    """Best-so-far assignment (anytime result).

    *on_improve*, when set, fires on every adoption with the new best
    value — the engine wires it to a trace event carrying the nodes
    spent so far, which strung together is the anytime curve
    (best-value-vs-nodes) of the run.
    """

    assignment: Assignment
    value: float
    improvements: int = 0
    on_improve: Callable[[float], None] | None = field(
        default=None, repr=False, compare=False
    )

    def offer(self, assignment: Assignment, value: float) -> bool:
        """Adopt a strictly better assignment; True when it improved."""
        if value < self.value:
            self.assignment = assignment
            self.value = value
            self.improvements += 1
            if self.on_improve is not None:
                self.on_improve(value)
            return True
        return False


class SearchEngine:
    """Base class for the metaheuristic engines (see module docstring).

    Parameters
    ----------
    ctx:
        Shared analysis context.
    objective:
        Metric to minimise.
    budget:
        Node budget for the exploration phase (the greedy warm start is
        not charged against it).
    seed:
        RNG seed (fixed seed == byte-identical run).
    evaluator:
        Optionally share a pre-warmed evaluator across engines.
    initial:
        Optional warm-start assignment + its trace (the portfolio runs
        greedy once and hands the incumbent to every member instead of
        re-running it per strategy).
    """

    name = "base"

    def __init__(
        self,
        ctx: AnalysisContext,
        objective: Objective = Objective.EDP,
        budget: SearchBudget | None = None,
        seed: int = 0,
        evaluator: IncrementalEvaluator | None = None,
        initial: tuple[Assignment, SearchTrace] | None = None,
    ):
        self.ctx = ctx
        self.objective = objective
        self.budget = budget if budget is not None else SearchBudget()
        self.seed = seed
        self.evaluator = evaluator or IncrementalEvaluator(ctx)
        self._initial = initial

    # ------------------------------------------------------------------

    def _warm_start(self) -> tuple[Assignment, SearchTrace]:
        if self._initial is not None:
            return self._initial
        return GreedyAssigner(
            self.ctx, objective=self.objective, evaluator=self.evaluator
        ).run()

    def run(self) -> tuple[Assignment, SearchTrace]:
        """Warm-start, explore under the budget, return the incumbent."""
        started = time.perf_counter()
        hits_before = self.evaluator.stats.hits
        misses_before = self.evaluator.stats.misses
        greedy_assignment, greedy_trace = self._warm_start()
        state = SearchState(
            self.ctx,
            objective=self.objective,
            evaluator=self.evaluator,
            assignment=greedy_assignment,
        )
        incumbent = Incumbent(assignment=greedy_assignment, value=state.value)
        if obs_trace.enabled():
            # anytime curve: one event per adoption, x = nodes spent
            strategy, budget = self.name, self.budget
            incumbent.on_improve = lambda value: obs_trace.emit(
                "search.improve",
                strategy=strategy,
                value=value,
                nodes=budget.used,
            )
            obs_trace.emit(
                "search.start",
                strategy=self.name,
                initial=state.value,
                budget=self.budget.nodes,
                seed=self.seed,
            )
        rng = random.Random(self.seed)
        steps: list[str] = list(greedy_trace.steps)
        events = self._explore(state, incumbent, rng)
        if len(events) > MAX_TRACE_STEPS:
            elided = len(events) - MAX_TRACE_STEPS
            events = events[:MAX_TRACE_STEPS] + [
                f"{self.name}: ... {elided} more improvement(s)"
            ]
        steps.extend(events)
        stats = fold_search_stats(
            greedy_trace.stats,
            extra_nodes=self.budget.used,
            extra_applied=incumbent.improvements,
            evaluator=self.evaluator,
            hits_before=hits_before,
            misses_before=misses_before,
            started=started,
        )
        trace = SearchTrace(
            steps=tuple(steps),
            initial_value=greedy_trace.initial_value,
            final_value=incumbent.value,
            stats=stats,
            strategy=self.name,
        )
        _SEARCH_RUNS.inc()
        _SEARCH_IMPROVEMENTS.inc(incumbent.improvements)
        _SEARCH_NODES.inc(self.budget.used)
        obs_trace.emit(
            "search.done",
            strategy=self.name,
            final=incumbent.value,
            improvements=incumbent.improvements,
            nodes=self.budget.used,
        )
        return incumbent.assignment, trace

    # ------------------------------------------------------------------

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        """Strategy hook: walk *state*, improve *incumbent*.

        Returns the improvement-event descriptions for the trace.  The
        hook must respect ``self.budget`` (charge per scored move, stop
        when exhausted) and may freely mutate *state* — the incumbent
        holds its own immutable assignment snapshots.
        """
        raise NotImplementedError

    def _restart_state(self, assignment: Assignment) -> SearchState:
        """Fresh state at *assignment* (same shared evaluator)."""
        return SearchState(
            self.ctx,
            objective=self.objective,
            evaluator=self.evaluator,
            assignment=assignment,
        )

    def _sampled_descent(
        self,
        state: SearchState,
        incumbent: Incumbent,
        rng: random.Random,
        neighborhood: int,
        patience: int,
        label: str,
    ) -> list[str]:
        """Sampled steepest descent to (approximately) a local optimum.

        Each round scores a *neighborhood*-sized sample and applies the
        best improving move; the walk stops after *patience*
        improvement-free rounds or budget exhaustion.  Shared by the
        annealing polish phase and the restart engine's descent.
        """
        events = []
        budget = self.budget
        stale = 0
        while stale < patience and not budget.exhausted():
            sample_size = min(neighborhood, budget.remaining)
            best_move = None
            best_value = state.value
            sample = state.neighborhood_sample(rng, sample_size)
            # Batched frontier pass; selection identical to the per-move
            # loop (strict <, first-seen wins ties).
            for move, trial in zip(sample, state.score_frontier(sample)):
                if trial is not None and trial < best_value:
                    best_value = trial
                    best_move = move
            budget.charge(sample_size)
            if best_move is None:
                stale += 1
                continue
            stale = 0
            state.apply(best_move)
            if incumbent.offer(state.assignment, state.value):
                events.append(
                    f"{self.name}: {label}{best_move.describe()} -> "
                    f"{state.value:.6g}"
                )
        return events


class ExactSearch(SearchEngine):
    """Branch-and-bound probe: optimal on small cases, greedy elsewhere.

    Converts its move budget into a
    :class:`~repro.core.exhaustive.ExhaustiveAssigner` visited-node
    budget (x :data:`EXACT_NODE_FACTOR`) over the full ``copies +
    homes`` space.  When the search completes it returns the true
    optimum — this is the portfolio member that makes "matches the
    exhaustive oracle on small cases" a guarantee instead of a hope.
    On larger cases the node budget trips and the engine falls back to
    the greedy incumbent (still never worse than greedy).
    """

    name = "exact"

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        del rng  # deterministic by nature
        max_states = self.budget.nodes * EXACT_NODE_FACTOR
        try:
            result = ExhaustiveAssigner(
                self.ctx,
                objective=self.objective,
                include_home_moves=True,
                max_states=max_states,
                prune=True,
                evaluator=self.evaluator,
            ).run()
        except AssignmentError:
            self.budget.charge(self.budget.remaining)
            return [f"{self.name}: space exceeds {max_states} nodes; kept greedy"]
        self.budget.charge(
            min(self.budget.remaining, max(1, result.evaluated // EXACT_NODE_FACTOR))
        )
        if incumbent.offer(result.assignment, result.value):
            return [
                f"{self.name}: optimum {result.value:.6g} "
                f"({result.evaluated} nodes, {result.pruned} pruned)"
            ]
        return [f"{self.name}: greedy already optimal ({result.evaluated} nodes)"]
