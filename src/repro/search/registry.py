"""Strategy registry: names -> engines, specs -> runnable assigners.

One flat namespace covers every way the repository can compute an
assignment — the paper's greedy engine, the four metaheuristics, the
exact probe and the portfolio — so the CLI (``--assigner``), the sweep
grid (:class:`~repro.analysis.sweep.SweepCell`), the JSON-RPC service
and the differential harness all resolve the same names to the same
engines.  :func:`build_assigner` is the single construction point:
give it an :class:`~repro.search.config.AssignerSpec` and a context,
get back an object whose ``run()`` returns ``(assignment,
SearchTrace)``.
"""

from __future__ import annotations

from repro.core.assignment import GreedyAssigner, Objective
from repro.core.context import AnalysisContext
from repro.core.incremental import IncrementalEvaluator
from repro.errors import ValidationError
from repro.search.anneal import AnnealingSearch
from repro.search.beam import BeamSearch
from repro.search.config import AssignerSpec
from repro.search.engine import ExactSearch, SearchBudget, SearchEngine
from repro.search.portfolio import PortfolioRunner
from repro.search.restart import RestartGreedySearch
from repro.search.tabu import TabuSearch

__all__ = [
    "ASSIGNER_NAMES",
    "STRATEGIES",
    "build_assigner",
    "strategy_class",
]

STRATEGIES: dict[str, type[SearchEngine]] = {
    AnnealingSearch.name: AnnealingSearch,
    TabuSearch.name: TabuSearch,
    BeamSearch.name: BeamSearch,
    RestartGreedySearch.name: RestartGreedySearch,
    ExactSearch.name: ExactSearch,
}
"""The standalone metaheuristic engines, keyed by strategy name."""

ASSIGNER_NAMES: tuple[str, ...] = (
    "greedy",
    "portfolio",
) + tuple(STRATEGIES)
"""Everything ``--assigner`` accepts, in display order."""


def strategy_class(name: str) -> type[SearchEngine]:
    """Engine class of one metaheuristic strategy name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown search strategy {name!r}; "
            f"choose from {', '.join(STRATEGIES)}"
        ) from None


def build_assigner(
    ctx: AnalysisContext,
    objective: Objective = Objective.EDP,
    spec: AssignerSpec | None = None,
    evaluator: IncrementalEvaluator | None = None,
    jobs: int = 1,
    race_recipe: tuple | None = None,
):
    """Materialise the engine an :class:`AssignerSpec` describes.

    ``greedy`` constructs a plain :class:`GreedyAssigner` with exactly
    the scenario runner's historical arguments, so a default spec is
    byte-identical to the pre-portfolio behaviour.  *jobs* and
    *race_recipe* enable parallel portfolio racing (see
    :class:`PortfolioRunner`); other engines ignore them — their
    results are identical either way, so neither is part of the
    spec's cache identity.
    """
    spec = spec if spec is not None else AssignerSpec()
    if spec.name == "greedy":
        return GreedyAssigner(ctx, objective=objective, evaluator=evaluator)
    budget = SearchBudget(nodes=spec.budget, wall_time_s=spec.budget_seconds)
    if spec.name == "portfolio":
        return PortfolioRunner(
            ctx,
            objective=objective,
            budget=budget,
            seed=spec.seed,
            evaluator=evaluator,
            jobs=jobs,
            race_recipe=race_recipe,
        )
    return strategy_class(spec.name)(
        ctx,
        objective=objective,
        budget=budget,
        seed=spec.seed,
        evaluator=evaluator,
    )
