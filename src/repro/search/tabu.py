"""Tabu search over the assignment move space.

Each iteration samples a candidate neighborhood, scores every
candidate, and applies the best one that is **not tabu** — even when it
worsens the objective, which is what carries the walk across valleys a
pure descent would die in.  Applying a move makes its *reversal*
tabu for :data:`TENURE` iterations (re-adding a just-dropped copy,
re-homing an array back), so the walk cannot immediately undo itself
and cycle.  The aspiration criterion overrides the tabu list whenever
a tabu move would beat the incumbent — a new global best is always
worth taking.
"""

from __future__ import annotations

import random

from repro.search.engine import Incumbent, SearchEngine
from repro.search.state import AddCopy, DropCopy, Move, Rehome, SearchState

__all__ = ["TabuSearch"]

TENURE = 8
"""Iterations a reversal stays forbidden."""

NEIGHBORHOOD = 24
"""Candidate moves sampled (and scored) per iteration."""


def _signature(move: Move) -> tuple:
    """Direction-free identity: a move and its inverse share one key."""
    if isinstance(move, (AddCopy, DropCopy)):
        return ("copy", move.group_key, move.uid, move.layer_name)
    assert isinstance(move, Rehome)
    return ("home", move.array_name)


class TabuSearch(SearchEngine):
    """Sampled-neighborhood tabu search (see module docstring)."""

    name = "tabu"

    def _explore(
        self, state: SearchState, incumbent: Incumbent, rng: random.Random
    ) -> list[str]:
        events: list[str] = []
        budget = self.budget
        tabu_until: dict[tuple, int] = {}
        iteration = 0
        while not budget.exhausted():
            iteration += 1
            sample_size = min(NEIGHBORHOOD, budget.remaining)
            candidates = state.neighborhood_sample(rng, sample_size)
            budget.charge(sample_size)
            best_move: Move | None = None
            best_value = float("inf")
            # One batched pass over the whole neighborhood: bit-identical
            # to per-move score(), argmin below unchanged.
            for move, trial in zip(candidates, state.score_frontier(candidates)):
                if trial is None:
                    continue
                if tabu_until.get(_signature(move), 0) >= iteration:
                    if trial >= incumbent.value:  # no aspiration
                        continue
                if trial < best_value:
                    best_value = trial
                    best_move = move
            if best_move is None:
                continue
            state.apply(best_move)
            tabu_until[_signature(best_move)] = iteration + TENURE
            if incumbent.offer(state.assignment, state.value):
                events.append(
                    f"{self.name}: {best_move.describe()} -> {state.value:.6g}"
                )
        return events
