"""Picklable, hashable assigner configuration.

:class:`AssignerSpec` is the *recipe* for a search engine — strategy
name, node budget, RNG seed — the same way
:class:`~repro.analysis.sweep.PlatformSpec` is the recipe for a
platform.  It rides inside :class:`~repro.analysis.sweep.SweepCell`
(so sweep workers rebuild the engine from the cell), inside the
service's cache-key payloads (so two sweeps with different assigners
never share a memoized result), and inside the CLI argument wiring.

It deliberately knows nothing about the engines themselves:
:mod:`repro.search.registry` validates names and builds engines, which
keeps this module import-light enough for :mod:`repro.analysis.sweep`
and :mod:`repro.service.keys` to depend on without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

DEFAULT_BUDGET = 2000
"""Default node budget (scored moves) for the metaheuristic engines."""


@dataclass(frozen=True)
class AssignerSpec:
    """A picklable search-engine recipe.

    Attributes
    ----------
    name:
        Strategy name from :data:`repro.search.registry.ASSIGNER_NAMES`
        (``greedy`` keeps the paper's deterministic steepest-descent
        engine and ignores budget/seed).
    budget:
        Node budget: the number of candidate moves the engine may
        score.  Metaheuristic results are **anytime** — any budget
        returns the best assignment seen so far, and larger budgets
        only ever improve it.
    seed:
        RNG seed; a fixed seed makes every engine byte-for-byte
        deterministic.
    budget_seconds:
        Optional wall-clock cut-off (:attr:`SearchBudget.wall_time_s`)
        composing with the node budget: the engine stops at whichever
        limit trips first.  Timed results are still anytime-valid and
        never worse than greedy, but no longer machine-independent —
        leave ``None`` for reproducible runs.
    """

    name: str = "greedy"
    budget: int = DEFAULT_BUDGET
    seed: int = 0
    budget_seconds: float | None = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValidationError("assigner name must be a non-empty string")
        if self.budget < 1:
            raise ValidationError(
                f"assigner budget must be >= 1, got {self.budget}"
            )
        if self.budget_seconds is not None and not self.budget_seconds > 0:
            raise ValidationError(
                f"assigner budget_seconds must be positive, "
                f"got {self.budget_seconds}"
            )

    def payload(self) -> dict:
        """Canonical cache-key identity of this assigner config.

        The greedy engine is deterministic and budget/seed-free, so its
        payload is just the name — bumping a budget default can never
        cold-start caches full of greedy results.  Every other engine's
        result depends on (name, budget, seed), so all three key.  A
        wall-clock cut makes results machine-dependent, so it joins the
        payload only when set — untimed specs keep their historical
        keys.
        """
        if self.name == "greedy":
            return {"name": "greedy"}
        payload = {"name": self.name, "budget": self.budget, "seed": self.seed}
        if self.budget_seconds is not None:
            payload["budget_seconds"] = self.budget_seconds
        return payload

    def describe(self) -> str:
        """Short human-readable form for tables and logs."""
        if self.name == "greedy":
            return "greedy"
        base = f"{self.name}(budget={self.budget}, seed={self.seed}"
        if self.budget_seconds is not None:
            base += f", {self.budget_seconds:g}s"
        return base + ")"
