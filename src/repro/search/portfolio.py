"""Strategy portfolio: race the engines, keep the best incumbent.

No single metaheuristic dominates across workloads — exact solving
wins small cases outright, annealing handles rugged landscapes, beam
handles deep chain selection, tabu escapes plateaus, multi-start
covers basins.  :class:`PortfolioRunner` runs all of them under one
shared node budget (split evenly), over one shared
:class:`~repro.core.incremental.IncrementalEvaluator` — so every
contribution any member scores warms the cache for the rest — and
returns the best assignment with **per-strategy attribution**: the
returned trace's ``strategy`` is ``portfolio:<winner>``, and
:attr:`PortfolioRunner.outcomes` records each member's value, nodes
and wall time for reports and benchmarks.

Members run sequentially in a fixed order with per-member derived
seeds, which keeps a portfolio run byte-for-byte deterministic for a
fixed ``(budget, seed)`` — the property the service cache and the
differential harness rely on.  (Process-level parallelism belongs one
layer up: a sweep already fans its cells across
:class:`~repro.analysis.sweep.ParallelSweepRunner` workers, and each
cell's portfolio stays deterministic inside its worker.)

The greedy warm start is computed once and handed to every member, so
the portfolio result can never be worse than
:class:`~repro.core.assignment.GreedyAssigner` — the anytime floor the
verification harness asserts.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.core.assignment import GreedyAssigner, Objective, SearchTrace
from repro.core.context import AnalysisContext, Assignment
from repro.core.incremental import IncrementalEvaluator
from repro.search.engine import SearchBudget, fold_search_stats

__all__ = [
    "DEFAULT_PORTFOLIO",
    "PortfolioOutcome",
    "PortfolioRunner",
    "exact_probe_allowance",
]

DEFAULT_PORTFOLIO = ("exact", "beam", "annealing", "tabu", "restart")
"""Member order: cheap certainty first, then the stochastic walkers."""

_SEED_STRIDE = 7919
"""Prime stride separating the members' RNG streams."""


def exact_probe_allowance(total_budget: int) -> int:
    """Branch-and-bound nodes the portfolio's exact member may visit.

    A case is "small" — and the portfolio *guaranteed* to return the
    exhaustive optimum — exactly when its copies+homes branch-and-bound
    tree fits this many visited nodes.  The differential harness and
    the quality benchmarks gate their optimum-match assertions on it,
    so the guarantee they pin is the one the portfolio actually makes.
    """
    from repro.search.engine import EXACT_NODE_FACTOR

    share = max(1, total_budget // len(DEFAULT_PORTFOLIO))
    return share * EXACT_NODE_FACTOR


@dataclass(frozen=True)
class PortfolioOutcome:
    """One member's result, for attribution tables."""

    strategy: str
    value: float
    nodes: int
    wall_time_s: float
    improved_greedy: bool
    winner: bool = False


class PortfolioRunner:
    """Race the strategy portfolio under a shared budget.

    Parameters
    ----------
    ctx, objective:
        As for every engine.
    budget:
        Total node budget, split evenly across members.
    seed:
        Base seed; member *i* runs with ``seed + i * stride``.
    strategies:
        Member names (defaults to :data:`DEFAULT_PORTFOLIO`); resolved
        through :mod:`repro.search.registry`.
    evaluator:
        Optionally share a pre-warmed evaluator.
    """

    name = "portfolio"

    def __init__(
        self,
        ctx: AnalysisContext,
        objective: Objective = Objective.EDP,
        budget: SearchBudget | None = None,
        seed: int = 0,
        strategies: tuple[str, ...] = DEFAULT_PORTFOLIO,
        evaluator: IncrementalEvaluator | None = None,
    ):
        from repro.search.registry import strategy_class

        self.ctx = ctx
        self.objective = objective
        self.budget = budget if budget is not None else SearchBudget()
        self.seed = seed
        self.strategies = tuple(strategies)
        self._classes = [strategy_class(name) for name in self.strategies]
        self.evaluator = evaluator or IncrementalEvaluator(ctx)
        self.outcomes: tuple[PortfolioOutcome, ...] = ()

    def run(self) -> tuple[Assignment, SearchTrace]:
        """Run every member; return the best incumbent with attribution."""
        started = time.perf_counter()
        hits_before = self.evaluator.stats.hits
        misses_before = self.evaluator.stats.misses
        warm = GreedyAssigner(
            self.ctx, objective=self.objective, evaluator=self.evaluator
        ).run()
        greedy_assignment, greedy_trace = warm
        greedy_value = greedy_trace.final_value

        share = max(1, self.budget.nodes // max(1, len(self._classes)))
        best_assignment = greedy_assignment
        best_value = greedy_value
        best_name = "greedy"
        best_events: tuple[str, ...] = ()
        outcomes = []
        nodes_used = 0
        for position, (name, cls) in enumerate(
            zip(self.strategies, self._classes)
        ):
            member_started = time.perf_counter()
            # Members share the PORTFOLIO's deadline: each gets the
            # wall time still remaining, not a fresh full allowance.
            remaining_s = self.budget.remaining_time()
            if remaining_s is not None and remaining_s <= 0:
                break
            member_budget = SearchBudget(nodes=share, wall_time_s=remaining_s)
            engine = cls(
                self.ctx,
                objective=self.objective,
                budget=member_budget,
                seed=self.seed + position * _SEED_STRIDE,
                evaluator=self.evaluator,
                initial=warm,
            )
            assignment, trace = engine.run()
            nodes_used += member_budget.used
            improved = trace.final_value < greedy_value
            outcomes.append(
                PortfolioOutcome(
                    strategy=name,
                    value=trace.final_value,
                    nodes=member_budget.used,
                    wall_time_s=time.perf_counter() - member_started,
                    improved_greedy=improved,
                )
            )
            if trace.final_value < best_value:
                best_value = trace.final_value
                best_assignment = assignment
                best_name = name
                best_events = trace.steps[len(greedy_trace.steps):]
        self.budget.charge(min(self.budget.remaining, nodes_used))
        self.outcomes = tuple(
            dataclasses.replace(outcome, winner=True)
            if outcome.strategy == best_name
            else outcome
            for outcome in outcomes
        )

        steps = list(greedy_trace.steps)
        steps.extend(best_events)
        steps.append(
            f"portfolio: {best_name} wins at {best_value:.6g} "
            f"({nodes_used} nodes across {len(self.strategies)} strategies)"
        )
        stats = fold_search_stats(
            greedy_trace.stats,
            extra_nodes=nodes_used,
            extra_applied=0,
            evaluator=self.evaluator,
            hits_before=hits_before,
            misses_before=misses_before,
            started=started,
        )
        trace = SearchTrace(
            steps=tuple(steps),
            initial_value=greedy_trace.initial_value,
            final_value=best_value,
            stats=stats,
            strategy=f"portfolio:{best_name}",
        )
        return best_assignment, trace
