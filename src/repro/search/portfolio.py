"""Strategy portfolio: race the engines, keep the best incumbent.

No single metaheuristic dominates across workloads — exact solving
wins small cases outright, annealing handles rugged landscapes, beam
handles deep chain selection, tabu escapes plateaus, multi-start
covers basins.  :class:`PortfolioRunner` runs all of them under one
shared node budget (split evenly), over one shared
:class:`~repro.core.incremental.IncrementalEvaluator` — so every
contribution any member scores warms the cache for the rest — and
returns the best assignment with **per-strategy attribution**: the
returned trace's ``strategy`` is ``portfolio:<winner>``, and
:attr:`PortfolioRunner.outcomes` records each member's value, nodes
and wall time for reports and benchmarks.

Members run in a fixed order with per-member derived seeds, which
keeps a portfolio run byte-for-byte deterministic for a fixed
``(budget, seed)``— the property the service cache and the
differential harness rely on.  With ``jobs > 1`` and a picklable
``race_recipe`` the members race across the process-wide persistent
worker pool instead of sequentially: every member's search decisions
depend only on (recipe, budget, seed) — never on what another member
cached — so the parallel race reduces, in the same fixed member
order with the same strict-`<` rule, to byte-identical winner,
values, node counts and trace steps as the sequential run.  (Only the
trace's wall-time and cache hit/miss counters differ: sequential
members share one progressively warmed evaluator, isolated workers
cannot.)  A worker failure falls back to running that member
in-parent, so the race never loses a member.

The greedy warm start is computed once and handed to every member, so
the portfolio result can never be worse than
:class:`~repro.core.assignment.GreedyAssigner` — the anytime floor the
verification harness asserts.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.core.assignment import GreedyAssigner, Objective, SearchTrace
from repro.core.context import AnalysisContext, Assignment
from repro.core.incremental import IncrementalEvaluator
from repro.search.engine import SearchBudget, fold_search_stats

__all__ = [
    "DEFAULT_PORTFOLIO",
    "PortfolioOutcome",
    "PortfolioRunner",
    "exact_probe_allowance",
]

DEFAULT_PORTFOLIO = ("exact", "beam", "annealing", "tabu", "restart")
"""Member order: cheap certainty first, then the stochastic walkers."""

_SEED_STRIDE = 7919
"""Prime stride separating the members' RNG streams."""


def exact_probe_allowance(total_budget: int) -> int:
    """Branch-and-bound nodes the portfolio's exact member may visit.

    A case is "small" — and the portfolio *guaranteed* to return the
    exhaustive optimum — exactly when its copies+homes branch-and-bound
    tree fits this many visited nodes.  The differential harness and
    the quality benchmarks gate their optimum-match assertions on it,
    so the guarantee they pin is the one the portfolio actually makes.
    """
    from repro.search.engine import EXACT_NODE_FACTOR

    share = max(1, total_budget // len(DEFAULT_PORTFOLIO))
    return share * EXACT_NODE_FACTOR


@dataclass(frozen=True)
class PortfolioOutcome:
    """One member's result, for attribution tables."""

    strategy: str
    value: float
    nodes: int
    wall_time_s: float
    improved_greedy: bool
    winner: bool = False


@dataclass(frozen=True)
class _MemberRun:
    """One member's raw race result, before reduction.

    Produced identically by the sequential loop, the pool worker and
    the in-parent fallback — the reduction below consumes only this,
    so the three paths cannot diverge.
    """

    strategy: str
    value: float
    nodes: int
    wall_time_s: float
    events: tuple[str, ...]
    assignment: Assignment


def _run_race_member(task) -> tuple:
    """Pool worker: run one portfolio member from a picklable recipe.

    *task* is ``(app, platform_spec, objective_value, strategy,
    share_nodes, seed, wall_time_s)``.  The worker rebuilds the
    analysis context from the recipe (through the sweep workers'
    context cache), re-runs the deterministic greedy warm start, and
    runs exactly the engine the sequential loop would have — same
    budget, same derived seed — so everything it returns except wall
    time is byte-identical to the sequential member.  Never raises:
    errors come back as text and the parent re-runs the member.
    """
    app, platform_spec, objective_value, strategy, share, seed, wall_s = task
    try:
        # Lazy: repro.analysis.sweep transitively imports this module.
        from repro.analysis.sweep import SweepCell, _cached_context
        from repro.search.registry import strategy_class

        objective = Objective(objective_value)
        cell = SweepCell(app=app, platform=platform_spec, objective=objective)
        _program, _platform, ctx = _cached_context(cell)
        evaluator = IncrementalEvaluator(ctx)
        warm = GreedyAssigner(
            ctx, objective=objective, evaluator=evaluator
        ).run()
        member_budget = SearchBudget(nodes=share, wall_time_s=wall_s)
        started = time.perf_counter()
        assignment, trace = strategy_class(strategy)(
            ctx,
            objective=objective,
            budget=member_budget,
            seed=seed,
            evaluator=evaluator,
            initial=warm,
        ).run()
        run = _MemberRun(
            strategy=strategy,
            value=trace.final_value,
            nodes=member_budget.used,
            wall_time_s=time.perf_counter() - started,
            events=tuple(trace.steps[len(warm[1].steps):]),
            assignment=assignment,
        )
        return run, None
    except Exception as error:  # noqa: BLE001 — worker boundary
        return None, f"{type(error).__name__}: {error}"


class PortfolioRunner:
    """Race the strategy portfolio under a shared budget.

    Parameters
    ----------
    ctx, objective:
        As for every engine.
    budget:
        Total node budget, split evenly across members.
    seed:
        Base seed; member *i* runs with ``seed + i * stride``.
    strategies:
        Member names (defaults to :data:`DEFAULT_PORTFOLIO`); resolved
        through :mod:`repro.search.registry`.
    evaluator:
        Optionally share a pre-warmed evaluator.
    jobs:
        Worker processes for the race; ``<= 1`` runs members
        sequentially in-process.  Parallel racing also needs
        *race_recipe* (workers rebuild the context from it); without
        one the runner silently stays sequential.
    race_recipe:
        Picklable ``(app_name,
        :class:`~repro.analysis.sweep.PlatformSpec`)`` pair describing
        this context, for the pool workers.
    """

    name = "portfolio"

    def __init__(
        self,
        ctx: AnalysisContext,
        objective: Objective = Objective.EDP,
        budget: SearchBudget | None = None,
        seed: int = 0,
        strategies: tuple[str, ...] = DEFAULT_PORTFOLIO,
        evaluator: IncrementalEvaluator | None = None,
        jobs: int = 1,
        race_recipe: tuple | None = None,
    ):
        from repro.search.registry import strategy_class

        self.ctx = ctx
        self.objective = objective
        self.budget = budget if budget is not None else SearchBudget()
        self.seed = seed
        self.strategies = tuple(strategies)
        self._classes = [strategy_class(name) for name in self.strategies]
        self.evaluator = evaluator or IncrementalEvaluator(ctx)
        self.jobs = jobs
        self.race_recipe = race_recipe
        self.outcomes: tuple[PortfolioOutcome, ...] = ()

    # ------------------------------------------------------------------

    def _run_member_local(self, position: int, share: int, warm) -> _MemberRun:
        """One member, sequentially, on the shared evaluator."""
        name, cls = self.strategies[position], self._classes[position]
        # Members share the PORTFOLIO's deadline: each gets the wall
        # time still remaining, not a fresh full allowance.
        member_budget = SearchBudget(
            nodes=share, wall_time_s=self.budget.remaining_time()
        )
        started = time.perf_counter()
        assignment, trace = cls(
            self.ctx,
            objective=self.objective,
            budget=member_budget,
            seed=self.seed + position * _SEED_STRIDE,
            evaluator=self.evaluator,
            initial=warm,
        ).run()
        return _MemberRun(
            strategy=name,
            value=trace.final_value,
            nodes=member_budget.used,
            wall_time_s=time.perf_counter() - started,
            events=tuple(trace.steps[len(warm[1].steps):]),
            assignment=assignment,
        )

    def _race(self, share: int, warm) -> list[_MemberRun]:
        """All member runs, in fixed member order.

        Sequential by default; with ``jobs > 1`` and a recipe, members
        fan across the persistent pool and any failed worker's member
        re-runs in-parent — the returned list always has one entry per
        raceable member, in the same order either way.
        """
        parallel = (
            self.jobs > 1
            and self.race_recipe is not None
            and len(self.strategies) > 1
        )
        if not parallel:
            runs = []
            for position in range(len(self.strategies)):
                remaining_s = self.budget.remaining_time()
                if remaining_s is not None and remaining_s <= 0:
                    break
                runs.append(self._run_member_local(position, share, warm))
            return runs
        from repro.analysis.pool import get_pool

        app, platform_spec = self.race_recipe
        remaining_s = self.budget.remaining_time()
        if remaining_s is not None and remaining_s <= 0:
            return []
        tasks = [
            (
                app,
                platform_spec,
                self.objective.value,
                name,
                share,
                self.seed + position * _SEED_STRIDE,
                remaining_s,
            )
            for position, name in enumerate(self.strategies)
        ]
        raced = get_pool().map_batched(_run_race_member, tasks, self.jobs)
        runs = []
        for position, (run, _error) in enumerate(raced):
            if run is None:  # worker failed: the member still races
                run = self._run_member_local(position, share, warm)
            runs.append(run)
        return runs

    def run(self) -> tuple[Assignment, SearchTrace]:
        """Run every member; return the best incumbent with attribution."""
        started = time.perf_counter()
        hits_before = self.evaluator.stats.hits
        misses_before = self.evaluator.stats.misses
        warm = GreedyAssigner(
            self.ctx, objective=self.objective, evaluator=self.evaluator
        ).run()
        greedy_assignment, greedy_trace = warm
        greedy_value = greedy_trace.final_value

        share = max(1, self.budget.nodes // max(1, len(self._classes)))
        best_assignment = greedy_assignment
        best_value = greedy_value
        best_name = "greedy"
        best_events: tuple[str, ...] = ()
        outcomes = []
        nodes_used = 0
        # Fixed-order reduction with strict <: the first member (in
        # portfolio order) at the best value wins ties, however the
        # runs were produced.
        for run in self._race(share, warm):
            nodes_used += run.nodes
            outcomes.append(
                PortfolioOutcome(
                    strategy=run.strategy,
                    value=run.value,
                    nodes=run.nodes,
                    wall_time_s=run.wall_time_s,
                    improved_greedy=run.value < greedy_value,
                )
            )
            if run.value < best_value:
                best_value = run.value
                best_assignment = run.assignment
                best_name = run.strategy
                best_events = run.events
        self.budget.charge(min(self.budget.remaining, nodes_used))
        self.outcomes = tuple(
            dataclasses.replace(outcome, winner=True)
            if outcome.strategy == best_name
            else outcome
            for outcome in outcomes
        )

        steps = list(greedy_trace.steps)
        steps.extend(best_events)
        steps.append(
            f"portfolio: {best_name} wins at {best_value:.6g} "
            f"({nodes_used} nodes across {len(self.strategies)} strategies)"
        )
        stats = fold_search_stats(
            greedy_trace.stats,
            extra_nodes=nodes_used,
            extra_applied=0,
            evaluator=self.evaluator,
            hits_before=hits_before,
            misses_before=misses_before,
            started=started,
        )
        trace = SearchTrace(
            steps=tuple(steps),
            initial_value=greedy_trace.initial_value,
            final_value=best_value,
            stats=stats,
            strategy=f"portfolio:{best_name}",
        )
        return best_assignment, trace
