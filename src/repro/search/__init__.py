"""Pluggable metaheuristic search engines (``repro.search``).

The paper's steering loop explores layer assignments far beyond what
greedy steepest descent or exhaustive enumeration covers at realistic
scale.  This package is the subsystem that makes large assignment
spaces tractable: a common anytime engine skeleton over PR 1's
O(delta) :class:`~repro.core.incremental.IncrementalEvaluator`, four
metaheuristic strategies, an exact probe, and a portfolio that races
them under a shared budget.

Layers
------

* :mod:`repro.search.config`    — :class:`AssignerSpec`, the picklable
  (name, budget, seed) recipe carried by sweep cells, cache keys and
  the CLI.
* :mod:`repro.search.state`     — :class:`SearchState`, the mutable
  walk state: O(delta) move scoring via contribution substitution,
  exact apply/undo, occupancy-ledger feasibility probes, seeded move
  proposal over the ``(group, home, copies)`` space.
* :mod:`repro.search.engine`    — :class:`SearchEngine` (greedy warm
  start, incumbent tracking, :class:`SearchBudget` node/time budgets,
  strategy-attributed traces) and :class:`ExactSearch`.
* :mod:`repro.search.anneal`    — simulated annealing with restarts.
* :mod:`repro.search.tabu`      — tabu search with aspiration.
* :mod:`repro.search.beam`      — constructive beam search.
* :mod:`repro.search.restart`   — random-restart sampled descent.
* :mod:`repro.search.portfolio` — :class:`PortfolioRunner`, racing all
  of the above with per-strategy attribution.
* :mod:`repro.search.registry`  — name -> engine resolution shared by
  the CLI, sweeps, the RPC service and the differential harness.

Guarantees (pinned by ``tests/search/`` and the ``metaheuristic``
differential check): every engine's result is legal and feasible,
never worse than :class:`~repro.core.assignment.GreedyAssigner` for
any budget (anytime, via the greedy warm start), byte-for-byte
deterministic for a fixed ``(budget, seed)``, and the portfolio
matches the exhaustive optimum on cases small enough for its exact
member to finish.
"""

from repro.search.anneal import AnnealingSearch
from repro.search.beam import BeamSearch
from repro.search.config import DEFAULT_BUDGET, AssignerSpec
from repro.search.engine import (
    ExactSearch,
    Incumbent,
    SearchBudget,
    SearchEngine,
)
from repro.search.portfolio import (
    DEFAULT_PORTFOLIO,
    PortfolioOutcome,
    PortfolioRunner,
    exact_probe_allowance,
)
from repro.search.registry import (
    ASSIGNER_NAMES,
    STRATEGIES,
    build_assigner,
    strategy_class,
)
from repro.search.restart import RestartGreedySearch
from repro.search.state import AddCopy, DropCopy, Rehome, SearchState
from repro.search.tabu import TabuSearch

__all__ = [
    "ASSIGNER_NAMES",
    "AddCopy",
    "AnnealingSearch",
    "AssignerSpec",
    "BeamSearch",
    "DEFAULT_BUDGET",
    "DEFAULT_PORTFOLIO",
    "DropCopy",
    "ExactSearch",
    "Incumbent",
    "PortfolioOutcome",
    "PortfolioRunner",
    "Rehome",
    "RestartGreedySearch",
    "STRATEGIES",
    "SearchBudget",
    "SearchEngine",
    "SearchState",
    "TabuSearch",
    "build_assigner",
    "exact_probe_allowance",
    "strategy_class",
]
